package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"kaskade/internal/datagen"
	"kaskade/internal/graph"
)

// renderResult flattens a result to strings, so results computed on
// distinct graph instances — whose VertexRefs embed different graph
// pointers and so never reflect.DeepEqual — can be compared for
// byte-identity of content and order.
func renderResult(res *Result) []string {
	out := make([]string, 0, len(res.Rows)+1)
	out = append(out, fmt.Sprint(res.Cols))
	for _, r := range res.Rows {
		out = append(out, fmt.Sprint(r))
	}
	return out
}

// assertSameRendered is assertSameResult across graph instances.
func assertSameRendered(t *testing.T, src string, want, got *Result, workers int) {
	t.Helper()
	a, b := renderResult(want), renderResult(got)
	if len(a) != len(b) {
		t.Fatalf("query %q workers=%d: %d rendered rows != %d", src, workers, len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %q workers=%d: row %d = %s, want %s", src, workers, i, b[i], a[i])
		}
	}
}

// TestDeltaOverlayMatchesRefreezeOnLineage is the delta-overlay A/B
// equivalence suite over every query shape: a graph mutating on
// overlay storage (tail merged behind the frozen accessors, no
// refreeze) must produce byte-identical results to the same graph on
// the legacy freeze-after-every-mutation lifecycle, and to the
// append-mode reference, sequential and parallel.
func TestDeltaOverlayMatchesRefreezeOnLineage(t *testing.T) {
	gOv, idsOv := lineage(t)
	gRf, idsRf := lineage(t)
	gRf.SetDeltaOverlay(false)
	// Prime the snapshots so subsequent mutations hit the overlay path
	// on one graph and the invalidation path on the other.
	gOv.Freeze()
	gRf.Freeze()
	mutate := func(g *graph.Graph, ids map[string]graph.VertexID, round int) {
		j := g.MustAddVertex("Job", graph.Properties{
			"name": fmt.Sprintf("jx%d", round), "CPU": int64(40 + round), "pipelineName": "px",
		})
		f := g.MustAddVertex("File", graph.Properties{"name": fmt.Sprintf("fx%d", round)})
		g.MustAddEdge(j, f, "WRITES_TO", nil)
		g.MustAddEdge(f, ids["j1"], "IS_READ_BY", nil)
		g.MustAddEdge(ids["j2"], f, "WRITES_TO", nil)
	}
	for round := 0; round < 3; round++ {
		mutate(gOv, idsOv, round)
		mutate(gRf, idsRf, round)
		if gOv.CachedFrozen() == nil {
			t.Fatal("overlay graph lost its snapshot")
		}
		if _, te := gOv.CachedFrozen().TailSize(); te == 0 {
			t.Fatal("mutations did not land in the tail")
		}
		for _, src := range equivalenceQueries {
			// Each graph's append-mode run is its semantic reference;
			// the two references are then pinned identical to each other.
			refOv := runMode(t, gOv, src, 1, true)
			refRf := runMode(t, gRf, src, 1, true)
			assertSameRendered(t, src, refRf, refOv, 1)
			for _, workers := range []int{1, 4} {
				assertSameResult(t, src, refOv, runMode(t, gOv, src, workers, false), workers)
				assertSameResult(t, src, refRf, runMode(t, gRf, src, workers, false), workers)
			}
		}
	}
}

// TestDeltaOverlayMatchesRefreezeWithColumns runs the same A/B with
// declared properties, so tail vertices resolve through the columnar
// path (tail column extensions, prefilter included) rather than the
// property maps.
func TestDeltaOverlayMatchesRefreezeWithColumns(t *testing.T) {
	build := func() *graph.Graph {
		g := graph.NewGraph(declaredSchema(t))
		var jobs, files []graph.VertexID
		for i := 0; i < 6; i++ {
			jobs = append(jobs, g.MustAddVertex("Job", graph.Properties{
				"name": fmt.Sprintf("j%d", i), "CPU": int64(10 * (i + 1)),
			}))
			files = append(files, g.MustAddVertex("File", graph.Properties{
				"name": fmt.Sprintf("f%d", i),
			}))
		}
		for i := range jobs {
			g.MustAddEdge(jobs[i], files[i], "WRITES_TO", nil)
			g.MustAddEdge(files[i], jobs[(i+1)%len(jobs)], "IS_READ_BY", nil)
		}
		return g
	}
	gOv := build()
	gRf := build()
	gRf.SetDeltaOverlay(false)
	gOv.Freeze()
	gRf.Freeze()
	queries := []string{
		`MATCH (j:Job) WHERE j.CPU >= 35 RETURN j.name AS name`,
		`MATCH (j:Job) RETURN SUM(j.CPU) AS total`,
		`MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.CPU > 20 RETURN j.name AS name, f.name AS file`,
		`SELECT name, cpu FROM (
			MATCH (j:Job) RETURN j.name AS name, j.CPU AS cpu
		) ORDER BY cpu DESC LIMIT 4`,
	}
	mutate := func(g *graph.Graph, round int) {
		// Tail Jobs straddling the WHERE thresholds, and a tail File.
		j1 := g.MustAddVertex("Job", graph.Properties{"name": fmt.Sprintf("tj%d", round), "CPU": int64(33 + round)})
		j2 := g.MustAddVertex("Job", graph.Properties{"name": fmt.Sprintf("tn%d", round), "CPU": int64(7 + round)})
		f := g.MustAddVertex("File", graph.Properties{"name": fmt.Sprintf("tf%d", round)})
		g.MustAddEdge(j1, f, "WRITES_TO", nil)
		g.MustAddEdge(f, j2, "IS_READ_BY", nil)
	}
	for round := 0; round < 3; round++ {
		mutate(gOv, round)
		mutate(gRf, round)
		for _, src := range queries {
			refOv := runMode(t, gOv, src, 1, true)
			refRf := runMode(t, gRf, src, 1, true)
			assertSameRendered(t, src, refRf, refOv, 1)
			for _, workers := range []int{1, 4} {
				assertSameResult(t, src, refOv, runMode(t, gOv, src, workers, false), workers)
				assertSameResult(t, src, refRf, runMode(t, gRf, src, workers, false), workers)
			}
		}
	}
}

// TestDeltaOverlayInterleavedRandom drives a randomized interleaved
// mutate/query sequence over a datagen provenance graph, in three
// storage lifecycles at once: plain overlay, overlay with an aggressive
// compaction threshold (folding every few mutations), and the refreeze
// baseline. All three must agree on every query at workers {1,4}.
func TestDeltaOverlayInterleavedRandom(t *testing.T) {
	cfg := datagen.ProvConfig{
		Jobs: 40, Files: 100, TasksPerJob: 2, Machines: 8, Users: 4,
		MaxReads: 12, Pipelines: 4, Seed: 5,
	}
	build := func() *graph.Graph {
		g, err := datagen.Prov(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	gOv := build()
	gCp := build()
	gCp.SetCompactionThreshold(8)
	gRf := build()
	gRf.SetDeltaOverlay(false)
	all := []*graph.Graph{gOv, gCp, gRf}
	for _, g := range all {
		g.Freeze()
	}
	rng := rand.New(rand.NewSource(99))
	queries := datasetQueries["prov"]
	for step := 0; step < 30; step++ {
		jobs := gOv.VerticesOfType("Job")
		files := gOv.VerticesOfType("File")
		switch rng.Intn(3) {
		case 0:
			name := fmt.Sprintf("fx%d", step)
			for _, g := range all {
				g.MustAddVertex("File", graph.Properties{"name": name})
			}
		case 1:
			j, f := jobs[rng.Intn(len(jobs))], files[rng.Intn(len(files))]
			for _, g := range all {
				g.MustAddEdge(j, f, "WRITES_TO", graph.Properties{"ts": int64(step)})
			}
		case 2:
			j, f := jobs[rng.Intn(len(jobs))], files[rng.Intn(len(files))]
			for _, g := range all {
				g.MustAddEdge(f, j, "IS_READ_BY", graph.Properties{"ts": int64(step)})
			}
		}
		src := queries[rng.Intn(len(queries))]
		ref := runMode(t, gRf, src, 1, false)
		for _, workers := range []int{1, 4} {
			assertSameRendered(t, src, ref, runMode(t, gOv, src, workers, false), workers)
			assertSameRendered(t, src, ref, runMode(t, gCp, src, workers, false), workers)
		}
	}
	if f := gOv.CachedFrozen(); f == nil {
		t.Fatal("overlay graph lost its snapshot")
	} else if tv, te := f.TailSize(); tv+te == 0 {
		t.Fatal("overlay graph accumulated no tail")
	}
	if gCp.Compactions() == 0 {
		t.Fatal("aggressive-threshold graph never compacted")
	}
}
