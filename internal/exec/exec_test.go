package exec

import (
	"math"
	"testing"

	"kaskade/internal/graph"
)

// lineage builds the small data-lineage graph of the paper's Fig. 3(a):
// jobs j1..j3, files f1..f4, with j1 writing f1/f2, f1 read by j2, f2
// read by j3, j2 writing f3, j3 writing f4.
func lineage(t testing.TB) (*graph.Graph, map[string]graph.VertexID) {
	schema := graph.MustSchema(
		[]string{"Job", "File"},
		[]graph.EdgeType{
			{From: "Job", To: "File", Name: "WRITES_TO"},
			{From: "File", To: "Job", Name: "IS_READ_BY"},
		},
	)
	g := graph.NewGraph(schema)
	ids := make(map[string]graph.VertexID)
	addJ := func(name string, cpu int64) {
		ids[name] = g.MustAddVertex("Job", graph.Properties{"name": name, "CPU": cpu, "pipelineName": "p" + name})
	}
	addF := func(name string) {
		ids[name] = g.MustAddVertex("File", graph.Properties{"name": name})
	}
	addJ("j1", 10)
	addJ("j2", 20)
	addJ("j3", 30)
	addF("f1")
	addF("f2")
	addF("f3")
	addF("f4")
	w := func(j, f string) { g.MustAddEdge(ids[j], ids[f], "WRITES_TO", nil) }
	r := func(f, j string) { g.MustAddEdge(ids[f], ids[j], "IS_READ_BY", nil) }
	w("j1", "f1")
	w("j1", "f2")
	r("f1", "j2")
	r("f2", "j3")
	w("j2", "f3")
	w("j3", "f4")
	return g, ids
}

func run(t *testing.T, g *graph.Graph, src string) *Result {
	t.Helper()
	res, err := Run(g, src)
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return res
}

func TestMatchSingleEdge(t *testing.T) {
	g, ids := lineage(t)
	res := run(t, g, `MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f`)
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4 write edges", len(res.Rows))
	}
	// First row should be j1 -> f1 (insertion order).
	if v := res.Rows[0][0].(VertexRef); v.ID != ids["j1"] {
		t.Errorf("row 0 job = %v", res.Rows[0][0])
	}
}

func TestMatchTypeFilter(t *testing.T) {
	g, _ := lineage(t)
	res := run(t, g, `MATCH (f:File)-[:IS_READ_BY]->(j:Job) RETURN f, j`)
	if len(res.Rows) != 2 {
		t.Errorf("got %d rows, want 2 read edges", len(res.Rows))
	}
	// A mistyped pattern yields nothing (Jobs are not read by Jobs).
	res = run(t, g, `MATCH (a:Job)-[:IS_READ_BY]->(b:Job) RETURN a, b`)
	if len(res.Rows) != 0 {
		t.Errorf("schema-impossible pattern matched %d rows", len(res.Rows))
	}
}

func TestMatchChain(t *testing.T) {
	g, ids := lineage(t)
	// Two-hop: j1 writes f which is read by j.
	res := run(t, g, `MATCH (a:Job)-[:WRITES_TO]->(f:File)-[:IS_READ_BY]->(b:Job) RETURN a, b`)
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	pairs := map[[2]graph.VertexID]bool{}
	for _, row := range res.Rows {
		pairs[[2]graph.VertexID{row[0].(VertexRef).ID, row[1].(VertexRef).ID}] = true
	}
	if !pairs[[2]graph.VertexID{ids["j1"], ids["j2"]}] || !pairs[[2]graph.VertexID{ids["j1"], ids["j3"]}] {
		t.Errorf("pairs = %v", pairs)
	}
}

func TestMatchMultiplePatternsJoin(t *testing.T) {
	g, _ := lineage(t)
	// Same shape as the chain, but split over two patterns joined on f.
	res := run(t, g, `MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) RETURN a, b`)
	if len(res.Rows) != 2 {
		t.Errorf("joined patterns: got %d rows, want 2", len(res.Rows))
	}
}

func TestMatchReversedEdge(t *testing.T) {
	g, _ := lineage(t)
	res := run(t, g, `MATCH (f:File)<-[:WRITES_TO]-(j:Job) RETURN f, j`)
	if len(res.Rows) != 4 {
		t.Errorf("reversed: got %d rows, want 4", len(res.Rows))
	}
}

func TestVariableLengthPath(t *testing.T) {
	g, ids := lineage(t)
	// From j1, 1..4 hops forward reaches f1, f2, j2, j3, f3, f4.
	res := run(t, g, `MATCH (a:Job)-[r*1..4]->(v) WHERE a.name = 'j1' RETURN v`)
	reached := map[graph.VertexID]bool{}
	for _, row := range res.Rows {
		reached[row[0].(VertexRef).ID] = true
	}
	for _, want := range []string{"f1", "f2", "j2", "j3", "f3", "f4"} {
		if !reached[ids[want]] {
			t.Errorf("vertex %s not reached", want)
		}
	}
	if len(reached) != 6 {
		t.Errorf("reached %d distinct vertices, want 6", len(reached))
	}
}

func TestVariableLengthZeroHops(t *testing.T) {
	g, _ := lineage(t)
	// *0..0 binds target = source.
	res := run(t, g, `MATCH (a:Job)-[r*0..0]->(b) RETURN a, b`)
	if len(res.Rows) != 3 {
		t.Fatalf("zero hops: %d rows, want 3 (one per job)", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[0].(VertexRef).ID != row[1].(VertexRef).ID {
			t.Errorf("zero-hop pair differs: %v", row)
		}
	}
}

func TestVariableLengthPathCounting(t *testing.T) {
	g, _ := lineage(t)
	// Distinct 2-hop paths job->file->job: j1-f1-j2 and j1-f2-j3.
	res := run(t, g, `MATCH (a:Job)-[r*2..2]->(b:Job) RETURN COUNT(r) AS n`)
	if len(res.Rows) != 1 || res.Rows[0][0].(int64) != 2 {
		t.Errorf("2-hop path count = %v, want 2", res.Rows)
	}
}

func TestEdgeUniquenessTerminatesOnCycles(t *testing.T) {
	g := graph.NewGraph(nil)
	a := g.MustAddVertex("V", nil)
	b := g.MustAddVertex("V", nil)
	g.MustAddEdge(a, b, "E", nil)
	g.MustAddEdge(b, a, "E", nil)
	// Unbounded variable length on a 2-cycle must terminate.
	res := run(t, g, `MATCH (x)-[r*]->(y) RETURN COUNT(r) AS n`)
	// Paths: a->b, a->b->a, b->a, b->a->b.
	if res.Rows[0][0].(int64) != 4 {
		t.Errorf("cycle paths = %v, want 4", res.Rows[0][0])
	}
}

func TestWhereOnProperties(t *testing.T) {
	g, _ := lineage(t)
	res := run(t, g, `MATCH (j:Job) WHERE j.CPU >= 20 RETURN j.name AS name`)
	if len(res.Rows) != 2 {
		t.Fatalf("WHERE: %d rows, want 2", len(res.Rows))
	}
	if res.Rows[0][0] != "j2" || res.Rows[1][0] != "j3" {
		t.Errorf("names = %v", res.Rows)
	}
}

func TestImplicitGroupingInReturn(t *testing.T) {
	g, _ := lineage(t)
	res := run(t, g, `MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j.name AS name, COUNT(f) AS nfiles`)
	if len(res.Rows) != 3 {
		t.Fatalf("%d groups, want 3", len(res.Rows))
	}
	byName := map[string]int64{}
	for _, row := range res.Rows {
		byName[row[0].(string)] = row[1].(int64)
	}
	if byName["j1"] != 2 || byName["j2"] != 1 || byName["j3"] != 1 {
		t.Errorf("counts = %v", byName)
	}
}

func TestCountStarAndEmptyAggregate(t *testing.T) {
	g, _ := lineage(t)
	res := run(t, g, `MATCH ()-[r]->() RETURN COUNT(*) AS n`)
	if res.Rows[0][0].(int64) != 6 {
		t.Errorf("edge count = %v, want 6", res.Rows[0][0])
	}
	// Aggregate over an empty match still yields one row.
	res = run(t, g, `MATCH (j:Job) WHERE j.CPU > 1000 RETURN COUNT(*) AS n`)
	if len(res.Rows) != 1 || res.Rows[0][0].(int64) != 0 {
		t.Errorf("empty aggregate = %v", res.Rows)
	}
}

func TestSelectOverMatch(t *testing.T) {
	g, _ := lineage(t)
	res := run(t, g, `
		SELECT name, nfiles FROM (
			MATCH (j:Job)-[:WRITES_TO]->(f:File)
			RETURN j.name AS name, COUNT(f) AS nfiles
		) WHERE nfiles > 1`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "j1" {
		t.Errorf("select-over-match = %v", res.Rows)
	}
}

func TestSelectGroupByAggregate(t *testing.T) {
	g, _ := lineage(t)
	res := run(t, g, `
		SELECT kind, SUM(cpu) AS total FROM (
			MATCH (j:Job) RETURN LABEL(j) AS kind, j.CPU AS cpu
		) GROUP BY kind`)
	if len(res.Rows) != 1 || res.Rows[0][1].(int64) != 60 {
		t.Errorf("group-by sum = %v", res.Rows)
	}
}

func TestBlastRadiusEndToEnd(t *testing.T) {
	g, _ := lineage(t)
	// Listing 1, adapted to the tiny graph (up to 8 hops between files).
	res := run(t, g, `
		SELECT A.pipelineName, AVG(T_CPU) AS avg_cpu FROM (
			SELECT A, SUM(B.CPU) AS T_CPU FROM (
				MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)
				      (q_f1:File)-[r*0..8]->(q_f2:File)
				      (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)
				RETURN q_j1 AS A, q_j2 AS B
			) GROUP BY A, B
		) GROUP BY A.pipelineName`)
	// Only j1 has downstream consumers (j2 via f1, j3 via f2); the
	// inner grouping gives (j1,j2)=20 and (j1,j3)=30, so AVG = 25.
	if len(res.Rows) != 1 {
		t.Fatalf("blast radius rows = %d, want 1", len(res.Rows))
	}
	if res.Rows[0][0] != "pj1" {
		t.Errorf("pipeline = %v, want pj1", res.Rows[0][0])
	}
	if avg := res.Rows[0][1].(float64); math.Abs(avg-25) > 1e-9 {
		t.Errorf("avg cpu = %v, want 25", avg)
	}
}

func TestOrderByLimit(t *testing.T) {
	g, _ := lineage(t)
	res := run(t, g, `
		SELECT name, cpu FROM (
			MATCH (j:Job) RETURN j.name AS name, j.CPU AS cpu
		) ORDER BY cpu DESC LIMIT 2`)
	if len(res.Rows) != 2 || res.Rows[0][0] != "j3" || res.Rows[1][0] != "j2" {
		t.Errorf("order/limit = %v", res.Rows)
	}
}

func TestScalarFunctions(t *testing.T) {
	g := graph.NewGraph(nil)
	a := g.MustAddVertex("V", nil)
	b := g.MustAddVertex("V", nil)
	c := g.MustAddVertex("V", nil)
	g.MustAddEdge(a, b, "E", graph.Properties{"ts": int64(5)})
	g.MustAddEdge(b, c, "E", graph.Properties{"ts": int64(9)})
	res := run(t, g, `MATCH (x)-[r*2..2]->(y) RETURN LENGTH(r) AS len, PATH_MAX(r, 'ts') AS maxts, PATH_SUM(r, 'ts') AS sum`)
	if len(res.Rows) != 1 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.Rows[0][0].(int64) != 2 || res.Rows[0][1].(int64) != 9 || res.Rows[0][2].(int64) != 14 {
		t.Errorf("path functions = %v", res.Rows[0])
	}
}

func TestRowLimitGuard(t *testing.T) {
	g, _ := lineage(t)
	ex := &Executor{G: g, MaxRows: 2}
	q := mustParse(t, `MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f`)
	if _, err := ex.Execute(q); err != ErrRowLimit {
		t.Errorf("row limit: got %v, want ErrRowLimit", err)
	}
}

func TestErrorsSurface(t *testing.T) {
	g, _ := lineage(t)
	if _, err := Run(g, `MATCH (j:Job) RETURN unknown_var`); err == nil {
		t.Error("unknown variable: want error")
	}
	if _, err := Run(g, `MATCH (j:Job) RETURN NOSUCHFUNC(j)`); err == nil {
		t.Error("unknown function: want error")
	}
	if _, err := Run(g, `MATCH (j:Job) WHERE j.CPU RETURN j`); err == nil {
		t.Error("non-boolean WHERE: want error")
	}
}
