package exec

import (
	"fmt"
	"math"

	"kaskade/internal/gql"
	"kaskade/internal/graph"
)

// aggregator implements grouped aggregation for both SELECT ... GROUP BY
// and Cypher-style implicit grouping in RETURN (group by the
// non-aggregate items). newAggregator returns nil when no aggregation is
// needed (pure projection).
type aggregator struct {
	items    []gql.ReturnItem
	keyExprs []gql.Expr      // grouping key expressions
	aggNodes []*gql.FuncCall // aggregate calls across all items
	groups   map[string]*aggGroup
	order    []string // group keys in first-seen order
	noCols   bool     // propagate the column A/B switch into finish()

	// feed-path scratch. feed is goroutine-confined (each chunk owns its
	// aggregator; the sequential path has one), so the per-row key and
	// argument slices are reused across rows instead of reallocated.
	// prepare, by contrast, runs concurrently on the SHARED merge-target
	// aggregator from buffered-mode workers and must keep allocating.
	keyBuf []Value
	argBuf []Value
}

type aggGroup struct {
	repEnv map[string]Value // environment of the group's first row
	accs   []accumulator
}

func newAggregator(items []gql.ReturnItem, groupBy []gql.Expr, noCols bool) *aggregator {
	var aggNodes []*gql.FuncCall
	for _, item := range items {
		aggNodes = append(aggNodes, collectAggregates(item.Expr)...)
	}
	if len(aggNodes) == 0 && len(groupBy) == 0 {
		return nil
	}
	a := &aggregator{
		items:    items,
		keyExprs: groupBy,
		aggNodes: aggNodes,
		groups:   make(map[string]*aggGroup),
		noCols:   noCols,
	}
	if len(groupBy) == 0 {
		// Implicit grouping: key on the aggregate-free items.
		for _, item := range items {
			if !gql.HasAggregate(item.Expr) {
				a.keyExprs = append(a.keyExprs, item.Expr)
			}
		}
	}
	a.keyBuf = make([]Value, len(a.keyExprs))
	a.argBuf = make([]Value, len(a.aggNodes))
	return a
}

// AggMode is the aggregation execution strategy the executor selects at
// plan time by inspecting a query's RETURN items (see QueryAggMode).
type AggMode int

const (
	// AggModeNone: pure projection, no aggregation. The parallel path
	// streams each chunk's row prefix eagerly as it is produced.
	AggModeNone AggMode = iota
	// AggModeBuffered: at least one accumulator's fold order is
	// observable (float SUM, AVG), so the parallel path buffers each
	// chunk's prepared yields and folds them at merge time, in exactly
	// the sequential feed order — byte-identical float accumulation at
	// the cost of materializing every yield.
	AggModeBuffered
	// AggModePartial: every accumulator is order-insensitive
	// (COUNT/COUNT(*), MIN, MAX, integer SUM), so each chunk runs its
	// own partial accumulators and the merge combines per-chunk states
	// in partition order — no yield buffer, same bytes.
	AggModePartial
)

// String names the mode for Explain-style display.
func (m AggMode) String() string {
	switch m {
	case AggModeBuffered:
		return "buffered"
	case AggModePartial:
		return "partial"
	}
	return "none"
}

// typeEnv is the static type context a MATCH block gives its RETURN
// expressions: the graph's schema (property kind declarations) and the
// type label each pattern variable is constrained to. It is what lets
// intTyped prove SUM(j.CPU) integer-valued when the schema declares
// Job.CPU as PropInt. A nil *typeEnv is valid and proves nothing —
// the conservative pre-schema behavior.
type typeEnv struct {
	schema *graph.Schema
	vars   map[string]string // pattern variable -> vertex/edge type label
}

// newTypeEnv derives the type context from a MATCH block's patterns:
// node variables with an explicit type label, and single-edge variables
// with an explicit edge type. A variable appearing with conflicting
// labels (the match would be empty anyway) is dropped. Variable-length
// path variables bind PathRefs, not elements, so they carry no type.
func newTypeEnv(schema *graph.Schema, patterns []gql.PathPattern) *typeEnv {
	if schema == nil {
		return nil
	}
	vars := make(map[string]string)
	conflict := make(map[string]bool)
	note := func(name, label string) {
		if name == "" || label == "" || conflict[name] {
			return
		}
		if prev, ok := vars[name]; ok && prev != label {
			delete(vars, name)
			conflict[name] = true
			return
		}
		vars[name] = label
	}
	for _, pat := range patterns {
		for _, n := range pat.Nodes {
			note(n.Var, n.Type)
		}
		for _, e := range pat.Edges {
			if !e.VarLength {
				note(e.Var, e.Type)
			}
		}
	}
	return &typeEnv{schema: schema, vars: vars}
}

// propKind resolves the declared kind of varName.prop, when the
// variable's type label is known and the schema declares the property.
func (te *typeEnv) propKind(varName, prop string) (graph.PropKind, bool) {
	if te == nil {
		return 0, false
	}
	label, ok := te.vars[varName]
	if !ok {
		return 0, false
	}
	return te.schema.PropertyKind(label, prop)
}

// aggModeOf classifies a RETURN item list. Partial merging requires
// every aggregate to be insensitive to fold order: COUNT and MIN/MAX
// always are (integer addition is associative; MIN/MAX keep the
// first-seen best on ties, which partition-order merging preserves,
// and ignore NaN outright — see minMaxAcc.add — so float ties are
// genuine ties), SUM only when its argument provably folds in
// integers, and AVG never (its sum accumulates in float64). te widens
// the provably-integer class with schema property declarations.
func aggModeOf(items []gql.ReturnItem, te *typeEnv) AggMode {
	var aggNodes []*gql.FuncCall
	for _, item := range items {
		aggNodes = append(aggNodes, collectAggregates(item.Expr)...)
	}
	if len(aggNodes) == 0 {
		return AggModeNone
	}
	for _, node := range aggNodes {
		switch node.Name {
		case "COUNT", "MIN", "MAX":
		case "SUM":
			if node.Star || len(node.Args) != 1 || !intTyped(node.Args[0], te) {
				return AggModeBuffered
			}
		default: // AVG, and anything newAccumulator would reject
			return AggModeBuffered
		}
	}
	return AggModePartial
}

// intTyped reports whether e provably evaluates to int64 (or nil, which
// accumulators skip) on every environment where it evaluates at all —
// the static check that licenses partial SUM merging. Property accesses
// are untyped in the data model unless the schema declares the property
// (Schema.DeclareProperty) for the variable's type label; undeclared
// accesses stay on the buffered path. A declaration is trusted at plan
// time; if the stored values then contradict it (float64 under a
// PropInt declaration), the partial merge fails loudly (sumAcc.merge)
// rather than silently producing worker-count-dependent float folds.
func intTyped(e gql.Expr, te *typeEnv) bool {
	switch e := e.(type) {
	case *gql.Lit:
		_, ok := e.Value.(int64)
		return ok
	case *gql.PropAccess:
		k, ok := te.propKind(e.Base, e.Key)
		return ok && k == graph.PropInt
	case *gql.UnaryExpr:
		return e.Op == "-" && intTyped(e.Operand, te)
	case *gql.BinaryExpr:
		// Integer division can promote to float (7/2), so only + - *.
		switch e.Op {
		case "+", "-", "*":
			return intTyped(e.Left, te) && intTyped(e.Right, te)
		}
		return false
	case *gql.FuncCall:
		switch e.Name {
		case "ID", "LENGTH":
			// Always int64 (or an error, which aborts either path).
			return true
		case "ABS":
			return len(e.Args) == 1 && intTyped(e.Args[0], te)
		case "COALESCE":
			for _, a := range e.Args {
				if !intTyped(a, te) {
					return false
				}
			}
			return len(e.Args) > 0
		}
		return false
	}
	return false
}

func collectAggregates(e gql.Expr) []*gql.FuncCall {
	switch e := e.(type) {
	case *gql.FuncCall:
		if e.IsAggregate() {
			return []*gql.FuncCall{e}
		}
		var out []*gql.FuncCall
		for _, a := range e.Args {
			out = append(out, collectAggregates(a)...)
		}
		return out
	case *gql.BinaryExpr:
		return append(collectAggregates(e.Left), collectAggregates(e.Right)...)
	case *gql.UnaryExpr:
		return collectAggregates(e.Operand)
	}
	return nil
}

// prepared holds one input row's evaluated aggregation inputs: the
// group key and the aggregate argument values. Evaluating these is the
// per-row work, so the parallel matcher runs prepare on its workers and
// defers only the (order-sensitive) accumulation to the merge phase.
type prepared struct {
	key  string
	args []Value // aligned with aggNodes; nil slots for COUNT(*)
}

// evalKey evaluates the grouping key expressions into buf and encodes
// the group key. buf must have len(a.keyExprs).
func (a *aggregator) evalKey(sc scope, buf []Value) (string, error) {
	for i, ke := range a.keyExprs {
		v, err := evalExpr(ke, sc)
		if err != nil {
			return "", err
		}
		buf[i] = v
	}
	return groupKey(buf), nil
}

// evalArgs evaluates the aggregate arguments into buf (len ==
// len(a.aggNodes); nil slots for COUNT(*)). Arguments of every
// aggregate except COUNT can be retained by the accumulator
// (minMaxAcc keeps its best value; buffered yields hold them until the
// merge), so they are exported here — COUNT only nil-checks its
// argument and skips the copy.
func (a *aggregator) evalArgs(sc scope, buf []Value) error {
	for i, node := range a.aggNodes {
		if node.Star {
			buf[i] = nil
			continue
		}
		if len(node.Args) != 1 {
			return fmt.Errorf("exec: %s expects one argument", node.Name)
		}
		v, err := evalExpr(node.Args[0], sc)
		if err != nil {
			return err
		}
		if node.Name != "COUNT" {
			v = exportValue(v)
		}
		buf[i] = v
	}
	return nil
}

// prepare evaluates a row's grouping key and aggregate arguments. It
// only reads the aggregator's immutable shape (items, keyExprs,
// aggNodes), so concurrent calls are safe — which is also why it
// allocates fresh slices instead of using the feed-path scratch:
// buffered-mode workers call prepare on the shared merge-target
// aggregator.
func (a *aggregator) prepare(sc scope) (prepared, error) {
	keyVals := make([]Value, len(a.keyExprs))
	key, err := a.evalKey(sc, keyVals)
	if err != nil {
		return prepared{}, err
	}
	p := prepared{key: key}
	if len(a.aggNodes) > 0 {
		p.args = make([]Value, len(a.aggNodes))
		if err := a.evalArgs(sc, p.args); err != nil {
			return prepared{}, err
		}
	}
	return p, nil
}

// route feeds one evaluated row (group key + aggregate arguments) into
// its group, materializing the group on first sight with rep() as its
// representative row. Calls mutate the group table and must stay on
// one goroutine.
func (a *aggregator) route(key string, args []Value, rep func() map[string]Value) error {
	g, ok := a.groups[key]
	if !ok {
		g = &aggGroup{repEnv: rep(), accs: make([]accumulator, len(a.aggNodes))}
		for i, node := range a.aggNodes {
			g.accs[i] = newAccumulator(node.Name)
		}
		a.groups[key] = g
		a.order = append(a.order, key)
	}
	for i, node := range a.aggNodes {
		var v Value
		if args != nil {
			v = args[i]
		}
		if err := g.accs[i].add(v, node.Star); err != nil {
			return err
		}
	}
	return nil
}

// feedPrepared routes prepared inputs into their group.
func (a *aggregator) feedPrepared(p prepared, rep func() map[string]Value) error {
	return a.route(p.key, p.args, rep)
}

// feed routes one input row (as a scope) into its group. feed is
// goroutine-confined, so it evaluates into the reusable scratch
// buffers — the accumulators consume argument values immediately
// (retained ones were exported by evalArgs), never the slice itself.
func (a *aggregator) feed(sc scope) error {
	key, err := a.evalKey(sc, a.keyBuf)
	if err != nil {
		return err
	}
	if err := a.evalArgs(sc, a.argBuf); err != nil {
		return err
	}
	return a.route(key, a.argBuf, sc.snapshot)
}

// mergeFrom folds a chunk-local aggregator of the same shape into a, in
// the chunk's first-seen group order. A group unseen by a is adopted
// wholesale (its representative row was the chunk's first — and, since
// no earlier partition saw the key, the global first); a known group
// merges accumulator states pairwise. Calling mergeFrom chunk by chunk
// in partition order reproduces the sequential path's group order and,
// for order-insensitive accumulators, its exact values. b must not be
// used afterwards.
func (a *aggregator) mergeFrom(b *aggregator) error {
	for _, key := range b.order {
		bg := b.groups[key]
		g, ok := a.groups[key]
		if !ok {
			a.groups[key] = bg
			a.order = append(a.order, key)
			continue
		}
		for i := range g.accs {
			m, ok := g.accs[i].(mergeable)
			if !ok {
				// Unreachable when the plan selected AggModePartial.
				return fmt.Errorf("exec: %T cannot merge partial states", g.accs[i])
			}
			if err := m.merge(bg.accs[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// finish produces the grouped output rows in first-seen group order.
func (a *aggregator) finish() ([]Row, error) {
	groups := a.order
	// With no grouping keys, SQL/Cypher aggregation yields exactly one
	// row even on empty input.
	if len(a.keyExprs) == 0 && len(groups) == 0 {
		g := &aggGroup{repEnv: map[string]Value{}, accs: make([]accumulator, len(a.aggNodes))}
		for i, node := range a.aggNodes {
			g.accs[i] = newAccumulator(node.Name)
		}
		a.groups[""] = g
		groups = []string{""}
	}
	var out []Row
	for _, key := range groups {
		g := a.groups[key]
		aggVals := make(map[*gql.FuncCall]Value, len(a.aggNodes))
		for i, node := range a.aggNodes {
			aggVals[node] = g.accs[i].result()
		}
		row := make(Row, len(a.items))
		for i, item := range a.items {
			v, err := evalWithAggs(item.Expr, mapScope{env: g.repEnv, noCols: a.noCols}, aggVals)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out = append(out, row)
	}
	return out, nil
}

// evalWithAggs evaluates an expression where aggregate calls are replaced
// by their accumulated results; other subexpressions evaluate against the
// group's representative row.
func evalWithAggs(e gql.Expr, sc scope, aggVals map[*gql.FuncCall]Value) (Value, error) {
	switch e := e.(type) {
	case *gql.FuncCall:
		if v, ok := aggVals[e]; ok {
			return v, nil
		}
	case *gql.BinaryExpr:
		if gql.HasAggregate(e.Left) || gql.HasAggregate(e.Right) {
			l, err := evalWithAggs(e.Left, sc, aggVals)
			if err != nil {
				return nil, err
			}
			r, err := evalWithAggs(e.Right, sc, aggVals)
			if err != nil {
				return nil, err
			}
			switch e.Op {
			case "+", "-", "*", "/":
				return arith(e.Op, l, r)
			}
			c, ok := compareValues(l, r)
			if !ok {
				return nil, fmt.Errorf("exec: cannot compare %T and %T", l, r)
			}
			switch e.Op {
			case "=":
				return c == 0, nil
			case "<>":
				return c != 0, nil
			case "<":
				return c < 0, nil
			case "<=":
				return c <= 0, nil
			case ">":
				return c > 0, nil
			case ">=":
				return c >= 0, nil
			}
		}
	case *gql.UnaryExpr:
		if gql.HasAggregate(e.Operand) {
			v, err := evalWithAggs(e.Operand, sc, aggVals)
			if err != nil {
				return nil, err
			}
			switch e.Op {
			case "-":
				switch v := v.(type) {
				case int64:
					return -v, nil
				case float64:
					return -v, nil
				}
			case "NOT":
				if b, ok := v.(bool); ok {
					return !b, nil
				}
			}
			return nil, fmt.Errorf("exec: %s applied to %T", e.Op, v)
		}
	}
	return evalExpr(e, sc)
}

// --- accumulators ---

type accumulator interface {
	add(v Value, star bool) error
	result() Value
}

// mergeable is implemented by accumulators whose fold is associative,
// so per-chunk partial states combined in partition order yield the
// same bytes as one sequential fold: COUNT (integer addition), MIN/MAX
// (comparison keeps the earlier partition's value on ties, matching the
// sequential first-seen-wins rule), and SUM while it stays in integers
// (the plan-time AggModePartial check guarantees it does). other is
// always the same concrete type as the receiver — both were built by
// newAccumulator for the same aggregate node.
type mergeable interface {
	accumulator
	merge(other accumulator) error
}

func newAccumulator(name string) accumulator {
	switch name {
	case "COUNT":
		return &countAcc{}
	case "SUM":
		return &sumAcc{}
	case "AVG":
		return &avgAcc{}
	case "MIN":
		return &minMaxAcc{wantLess: true}
	case "MAX":
		return &minMaxAcc{wantLess: false}
	}
	panic("exec: unknown aggregate " + name)
}

type countAcc struct{ n int64 }

func (a *countAcc) add(v Value, star bool) error {
	if star || v != nil {
		a.n++
	}
	return nil
}
func (a *countAcc) result() Value { return a.n }

func (a *countAcc) merge(o accumulator) error {
	a.n += o.(*countAcc).n
	return nil
}

type sumAcc struct {
	isFloat bool
	i       int64
	f       float64
	seen    bool
}

func (a *sumAcc) add(v Value, _ bool) error {
	switch v := v.(type) {
	case nil:
		return nil
	case int64:
		a.seen = true
		if a.isFloat {
			a.f += float64(v)
		} else {
			a.i += v
		}
	case float64:
		a.seen = true
		if !a.isFloat {
			a.isFloat = true
			a.f = float64(a.i)
		}
		a.f += v
	default:
		return fmt.Errorf("exec: SUM over %T", v)
	}
	return nil
}

func (a *sumAcc) result() Value {
	if !a.seen {
		return nil
	}
	if a.isFloat {
		return a.f
	}
	return a.i
}

func (a *sumAcc) merge(o accumulator) error {
	b := o.(*sumAcc)
	if !b.seen {
		return nil
	}
	if b.isFloat {
		// merge only runs on the partial path, which the planner selects
		// only after proving the argument folds in integers — so a float
		// here means the proof was wrong, i.e. a schema property
		// declaration (Schema.DeclareProperty(..., PropInt)) lied about
		// the stored values. Folding partial float sums would silently
		// produce worker-count-dependent bits; fail loudly instead so
		// the mis-declaration is found.
		return fmt.Errorf("exec: SUM argument declared integer (schema PropInt) produced float64 values; fix the property declaration")
	}
	return a.add(b.i, false)
}

type avgAcc struct {
	sum float64
	n   int64
}

func (a *avgAcc) add(v Value, _ bool) error {
	f, ok := toFloat(v)
	if v == nil {
		return nil
	}
	if !ok {
		return fmt.Errorf("exec: AVG over %T", v)
	}
	a.sum += f
	a.n++
	return nil
}

func (a *avgAcc) result() Value {
	if a.n == 0 {
		return nil
	}
	return a.sum / float64(a.n)
}

type minMaxAcc struct {
	wantLess bool
	best     Value
}

func (a *minMaxAcc) add(v Value, _ bool) error {
	if v == nil {
		return nil
	}
	// NaN is ignored like nil (SQL-NULL-style): compareValues reports it
	// as tying with everything, which would make the fold sensitive to
	// whether NaN arrived first — an order dependence that would break
	// the partial merge's associativity (and give position-dependent
	// answers sequentially, too).
	if f, ok := v.(float64); ok && math.IsNaN(f) {
		return nil
	}
	if a.best == nil {
		a.best = v
		return nil
	}
	c, ok := compareValues(v, a.best)
	if !ok {
		return fmt.Errorf("exec: MIN/MAX over incomparable %T and %T", v, a.best)
	}
	if (a.wantLess && c < 0) || (!a.wantLess && c > 0) {
		a.best = v
	}
	return nil
}

func (a *minMaxAcc) result() Value { return a.best }

func (a *minMaxAcc) merge(o accumulator) error {
	b := o.(*minMaxAcc)
	if b.best == nil {
		return nil
	}
	// add keeps a.best unless b's is strictly better, so on ties the
	// earlier partition — the sequential first-seen value — wins.
	return a.add(b.best, false)
}
