package exec

import (
	"strings"

	"kaskade/internal/gql"
	"kaskade/internal/graph"
	"kaskade/internal/metrics"
)

// colPrefilter is a plan-time extraction of the WHERE clause's leftmost
// AND-conjunct when it is a simple comparison between the first pattern
// node's property and a literal, and the property is backed by a frozen
// column. Filtering the first node's candidate list against the typed
// column is one flat array pass per candidate — no binding, no walk, no
// boxed property read — before the matcher descends at all. Survivors
// still evaluate the full WHERE (the conjunct is idempotent), so the
// prefilter can only drop candidates the WHERE would reject anyway;
// byte-identical output is preserved because AND evaluates left first
// (see evalBinary) and a failing leftmost conjunct short-circuits any
// error the rest of the expression could have raised.
type colPrefilter struct {
	col  graph.PropColumn
	op   string
	kind graph.PropKind
	litF float64 // numeric literal, promoted like compareValues
	litS string
	litB bool
}

// columnPrefilter derives the prefilter for q, or nil when the shape
// does not apply. The conditions are deliberately conservative: every
// skipped candidate must be one the full pipeline would have produced
// zero rows AND zero errors for.
func (ex *Executor) columnPrefilter(q *gql.MatchQuery) *colPrefilter {
	if ex.noColumns || ex.noFrozen || q.Where == nil || len(q.Patterns) == 0 {
		return nil
	}
	// Variable sanity: dropping a candidate suppresses every binding it
	// would have produced, including the "variable X is not a vertex" /
	// "bound twice" errors a colliding variable raises mid-walk. Reject
	// shapes where those errors are possible so they still surface.
	nodeVars := make(map[string]bool)
	edgeVarCount := make(map[string]int)
	for _, pat := range q.Patterns {
		if len(pat.Nodes) == 0 {
			return nil
		}
		for _, n := range pat.Nodes {
			if n.Var != "" {
				nodeVars[n.Var] = true
			}
		}
		for _, e := range pat.Edges {
			if e.Var != "" {
				edgeVarCount[e.Var]++
			}
		}
	}
	for _, pat := range q.Patterns {
		for _, e := range pat.Edges {
			if e.Var == "" {
				continue
			}
			if nodeVars[e.Var] {
				return nil
			}
			if e.VarLength && edgeVarCount[e.Var] > 1 {
				return nil
			}
		}
	}
	first := q.Patterns[0].Nodes[0]
	if first.Var == "" || first.Type == "" {
		return nil
	}
	// Leftmost AND-conjunct.
	conj := q.Where
	for {
		b, ok := conj.(*gql.BinaryExpr)
		if !ok || b.Op != "AND" {
			break
		}
		conj = b.Left
	}
	cmp, ok := conj.(*gql.BinaryExpr)
	if !ok {
		return nil
	}
	op := cmp.Op
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
	default:
		return nil
	}
	pa, paOK := cmp.Left.(*gql.PropAccess)
	lit, litOK := cmp.Right.(*gql.Lit)
	if !paOK || !litOK {
		// literal OP prop: flip the comparison around.
		pa, paOK = cmp.Right.(*gql.PropAccess)
		lit, litOK = cmp.Left.(*gql.Lit)
		if !paOK || !litOK {
			return nil
		}
		switch op {
		case "<":
			op = ">"
		case "<=":
			op = ">="
		case ">":
			op = "<"
		case ">=":
			op = "<="
		}
	}
	if pa.Base != first.Var {
		return nil
	}
	col, ok := ex.G.Freeze().Column(first.Type, pa.Key)
	if !ok {
		return nil
	}
	pf := &colPrefilter{col: col, op: op, kind: col.Kind()}
	switch pf.kind {
	case graph.PropInt, graph.PropFloat:
		switch l := lit.Value.(type) {
		case int64:
			pf.litF = float64(l)
		case float64:
			pf.litF = l
		default:
			return nil
		}
	case graph.PropString:
		s, ok := lit.Value.(string)
		if !ok {
			return nil
		}
		pf.litS = s
	case graph.PropBool:
		b, ok := lit.Value.(bool)
		if !ok {
			return nil
		}
		pf.litB = b
	default:
		return nil
	}
	return pf
}

// keep reports whether vertex v survives the conjunct. It replicates
// evalBinary/compareValues bit for bit: numeric comparisons promote to
// float64 (NaN ties with everything, c == 0), strings use
// strings.Compare, bools order false < true. An absent value is kept
// unless the op is "=": equality against nil is cleanly false (drop),
// "<>" is true (keep), and an ordering comparison errors in the full
// WHERE — keeping the candidate lets that error surface.
func (pf *colPrefilter) keep(v graph.VertexID) bool {
	var c int
	switch pf.kind {
	case graph.PropInt:
		iv, ok := pf.col.Int(v)
		if !ok {
			return pf.op != "="
		}
		c = cmpFloat(float64(iv), pf.litF)
	case graph.PropFloat:
		fv, ok := pf.col.Float(v)
		if !ok {
			return pf.op != "="
		}
		c = cmpFloat(fv, pf.litF)
	case graph.PropString:
		sv, ok := pf.col.Str(v)
		if !ok {
			return pf.op != "="
		}
		c = strings.Compare(sv, pf.litS)
	case graph.PropBool:
		bv, ok := pf.col.Bool(v)
		if !ok {
			return pf.op != "="
		}
		switch {
		case bv == pf.litB:
			c = 0
		case !bv:
			c = -1
		default:
			c = 1
		}
	}
	switch pf.op {
	case "=":
		return c == 0
	case "<>":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return true
}

// cmpFloat mirrors compareValues' numeric ordering, including the NaN
// behavior: every comparison with NaN is false, so NaN "ties".
func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// filter returns the candidates that survive the conjunct, in order.
// The result is non-nil even when empty — callers use it as an
// "override the candidate source" sentinel. Scanned candidates are
// counted as column scans.
func (pf *colPrefilter) filter(cands []graph.VertexID, reg *metrics.Registry) []graph.VertexID {
	out := make([]graph.VertexID, 0, len(cands))
	for _, v := range cands {
		if pf.keep(v) {
			out = append(out, v)
		}
	}
	if reg != nil {
		reg.ColumnScans.Add(int64(len(cands)))
	}
	return out
}
