package exec

import (
	"fmt"
	"strings"
	"time"
)

// StageProfile is one executed stage's actuals: rows it emitted,
// parallel chunks it merged (0 for sequential stages), and the wall
// time attributed to it.
type StageProfile struct {
	Stage  string
	Rows   int64
	Chunks int
	Dur    time.Duration
}

// Profile collects per-stage actuals for one execution — the data
// behind EXPLAIN ANALYZE. Attach a fresh Profile to Executor.Prof
// before executing; the match, aggregation, and relational-tail stages
// record themselves as they complete, and the executor stamps Total
// and Rows when the stream finishes. A Profile is single-use and
// written only from the consuming goroutine (the parallel matcher's
// merge loop runs there), so it needs no synchronization.
//
// Stage semantics: the match stage's Rows are yield events — pattern
// matches fed downstream, before aggregation collapses them; the
// aggregate stage's Rows are the groups it emitted; a SELECT's
// subquery stages appear first, followed by the relational tail
// (filter/project or aggregate, then order/limit). Rows on the final
// stage therefore equals Total rows returned, byte-for-byte what the
// buffered Execute path holds.
type Profile struct {
	Workers int
	Mode    AggMode
	Stages  []StageProfile
	// Rows is the number of result rows the execution returned; Total
	// is its end-to-end wall time (including stream consumption).
	Rows  int64
	Total time.Duration
}

// add appends one completed stage.
func (p *Profile) add(stage string, rows int64, chunks int, d time.Duration) {
	p.Stages = append(p.Stages, StageProfile{Stage: stage, Rows: rows, Chunks: chunks, Dur: d})
}

// String renders the profile as an aligned per-stage table.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %12s %8s %12s\n", "stage", "rows", "chunks", "time")
	for _, s := range p.Stages {
		chunks := ""
		if s.Chunks > 0 {
			chunks = fmt.Sprintf("%d", s.Chunks)
		}
		fmt.Fprintf(&b, "%-28s %12d %8s %12s\n", s.Stage, s.Rows, chunks, fmtDur(s.Dur))
	}
	fmt.Fprintf(&b, "%-28s %12d %8s %12s\n", "total", p.Rows, "", fmtDur(p.Total))
	return b.String()
}

// fmtDur renders a duration with microsecond-scale precision — stable
// widths for the table without nanosecond noise.
func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}
