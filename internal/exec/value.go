// Package exec evaluates hybrid gql queries against a property graph. It
// is the query-execution half of the Neo4j substitute: a backtracking
// graph pattern matcher (with Cypher-style variable-length paths and
// edge-uniqueness) feeding relational operators (filter, project,
// group/aggregate, order, limit).
package exec

import (
	"fmt"
	"strings"

	"kaskade/internal/graph"
)

// Value is a runtime value: nil, int64, float64, string, bool, VertexRef,
// EdgeRef, or PathRef.
type Value any

// VertexRef is a bound vertex.
type VertexRef struct {
	G  *graph.Graph
	ID graph.VertexID
}

// EdgeRef is a bound single edge.
type EdgeRef struct {
	G  *graph.Graph
	ID graph.EdgeID
}

// PathRef is a bound variable-length path (a sequence of edges; possibly
// empty for zero-hop matches).
type PathRef struct {
	G     *graph.Graph
	Edges []graph.EdgeID
}

// Row is one result tuple.
type Row []Value

// Result is a table of rows with named columns.
type Result struct {
	Cols []string
	Rows []Row
}

// Col returns the index of a named column, or -1.
func (r *Result) Col(name string) int {
	for i, c := range r.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// String renders the result as an aligned table (for the CLI and
// examples).
func (r *Result) String() string {
	var b strings.Builder
	widths := make([]int, len(r.Cols))
	cells := make([][]string, len(r.Rows))
	for i, c := range r.Cols {
		widths[i] = len(c)
	}
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := FormatValue(v)
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	for i, c := range r.Cols {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatValue renders a value for display.
func FormatValue(v Value) string {
	switch v := v.(type) {
	case nil:
		return "null"
	case VertexRef:
		return fmt.Sprintf("(%s:%d)", v.G.Vertex(v.ID).Type, v.ID)
	case EdgeRef:
		e := v.G.Edge(v.ID)
		return fmt.Sprintf("[%s:%d->%d]", e.Type, e.From, e.To)
	case PathRef:
		return fmt.Sprintf("path(len=%d)", len(v.Edges))
	case float64:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// groupKey builds a hashable key for GROUP BY from values.
func groupKey(vals []Value) string {
	var b strings.Builder
	for _, v := range vals {
		switch v := v.(type) {
		case nil:
			b.WriteString("n;")
		case VertexRef:
			fmt.Fprintf(&b, "v%d;", v.ID)
		case EdgeRef:
			fmt.Fprintf(&b, "e%d;", v.ID)
		case PathRef:
			b.WriteString("p")
			for _, e := range v.Edges {
				fmt.Fprintf(&b, "%d,", e)
			}
			b.WriteString(";")
		case int64:
			fmt.Fprintf(&b, "i%d;", v)
		case float64:
			fmt.Fprintf(&b, "f%g;", v)
		case string:
			fmt.Fprintf(&b, "s%q;", v)
		case bool:
			fmt.Fprintf(&b, "b%v;", v)
		default:
			fmt.Fprintf(&b, "?%v;", v)
		}
	}
	return b.String()
}
