package exec

import (
	"testing"

	"kaskade/internal/gql"
)

func mustParse(t testing.TB, src string) gql.Query {
	t.Helper()
	q, err := gql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}
