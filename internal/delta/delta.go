// Package delta computes view deltas: given one freshly appended base
// edge, which contracted edges must be inserted into each maintained
// k-hop connector view. This is the differential half of the
// delta-overlay storage layer (internal/graph/delta.go) — the overlay
// keeps the base snapshot current without refreezing, and this package
// keeps the materialized views current without re-walking their
// sources, in the spirit of Graphsurge's analytics over collections of
// related views (PAPERS.md).
//
// The delta for a new edge e and hop count k is the set of k-length
// paths that use e: for each split position i, backward i-length
// prefixes into e.From combined with forward (k-1-i)-length suffixes
// out of e.To, edge-unique across prefix+e+suffix. Because the k-hop
// views for k=1..maxK form a chain, one pair of bounded DFS walks
// (prefixes to depth maxK-1, suffixes likewise) serves every k: the
// per-k deltas are assembled from the shared frontier by length, so
// maintaining the whole chain costs one walk, not maxK.
//
// Emission order per k is exactly the order the per-edge nested walk in
// views.MaintainedConnector historically produced (split position, then
// prefix DFS order, then suffix DFS order) — the maintenance
// equivalence suites pin view fingerprints byte-identical to
// rematerialization, so the order is part of the contract.
package delta

import "kaskade/internal/graph"

// Edge is one view-delta record: a contracted k-hop edge to insert,
// with base-graph endpoint IDs and the aggregated path timestamp.
type Edge struct {
	From graph.VertexID
	To   graph.VertexID
	K    int
	TS   int64
}

// Config describes the maintained k-hop connector family sharing one
// delta computation: endpoint type constraints, the edge-type filter
// (empty: all types), and which hop counts to emit.
type Config struct {
	SrcType   string
	DstType   string
	EdgeTypes []string
	Ks        []int
}

// path is one collected prefix or suffix: the far endpoint, the edges
// walked (empty for the trivial length-0 path), and the max "ts" over
// those edges (meaningless when empty).
type path struct {
	end   graph.VertexID
	edges []graph.EdgeID
	ts    int64
}

// EdgeDeltas computes, for the freshly appended base edge eid, the new
// contracted edges of every k-hop view named in cfg.Ks, keyed by k.
// Each slice is in maintenance order (see the package comment). An edge
// whose type the filter rejects yields empty deltas for every k.
func EdgeDeltas(g *graph.Graph, eid graph.EdgeID, cfg Config) map[int][]Edge {
	out := make(map[int][]Edge, len(cfg.Ks))
	maxK := 0
	for _, k := range cfg.Ks {
		out[k] = nil
		if k > maxK {
			maxK = k
		}
	}
	e := g.Edge(eid)
	allow := typeFilter(cfg.EdgeTypes)
	if maxK == 0 || !allow(e.Type) {
		return out
	}
	prefixes := collect(g, e.From, true, maxK-1, eid, allow)
	suffixes := collect(g, e.To, false, maxK-1, eid, allow)
	baseTS := tsOf(e)
	for _, k := range cfg.Ks {
		for i := 0; i <= k-1; i++ {
			for _, p := range prefixes[i] {
				if cfg.SrcType != "" && g.Vertex(p.end).Type != cfg.SrcType {
					continue
				}
				for _, s := range suffixes[k-1-i] {
					if cfg.DstType != "" && g.Vertex(s.end).Type != cfg.DstType {
						continue
					}
					if !disjoint(p.edges, s.edges) {
						continue
					}
					ts := baseTS
					if len(p.edges) > 0 {
						ts = maxInt64(ts, p.ts)
					}
					if len(s.edges) > 0 {
						ts = maxInt64(ts, s.ts)
					}
					out[k] = append(out[k], Edge{From: p.end, To: s.end, K: k, TS: ts})
				}
			}
		}
	}
	return out
}

// collect gathers every edge-unique path of length 0..maxLen out of
// start — backward over in-edges (back=true, for prefixes into the new
// edge's source) or forward over out-edges (suffixes from its target) —
// grouped by length, each group in DFS preorder. Preorder restricted to
// one depth is exactly the order a depth-limited DFS emits its leaves,
// which is what makes the assembled per-k deltas match the historical
// nested walk.
func collect(g *graph.Graph, start graph.VertexID, back bool, maxLen int, skip graph.EdgeID, allow func(string) bool) [][]path {
	byLen := make([][]path, maxLen+1)
	byLen[0] = []path{{end: start}}
	if maxLen == 0 {
		return byLen
	}
	used := map[graph.EdgeID]bool{skip: true}
	stack := make([]graph.EdgeID, 0, maxLen)
	var walk func(at graph.VertexID, ts int64)
	walk = func(at graph.VertexID, ts int64) {
		if len(stack) == maxLen {
			return
		}
		row := g.Out(at)
		if back {
			row = g.In(at)
		}
		for _, eid := range row {
			if used[eid] {
				continue
			}
			e := g.Edge(eid)
			if !allow(e.Type) {
				continue
			}
			nts := tsOf(e)
			if len(stack) > 0 {
				nts = maxInt64(nts, ts)
			}
			used[eid] = true
			stack = append(stack, eid)
			next := e.To
			if back {
				next = e.From
			}
			byLen[len(stack)] = append(byLen[len(stack)], path{
				end: next, edges: append([]graph.EdgeID(nil), stack...), ts: nts,
			})
			walk(next, nts)
			stack = stack[:len(stack)-1]
			used[eid] = false
		}
	}
	walk(start, 0)
	return byLen
}

// disjoint reports whether the two edge lists share no edge. Paths are
// at most maxK-1 edges long, so the nested scan beats any set.
func disjoint(a, b []graph.EdgeID) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return false
			}
		}
	}
	return true
}

// typeFilter returns the allow predicate for an edge-type list (empty:
// everything passes) — the same semantics as the connector's filter.
func typeFilter(types []string) func(string) bool {
	if len(types) == 0 {
		return func(string) bool { return true }
	}
	set := make(map[string]bool, len(types))
	for _, t := range types {
		set[t] = true
	}
	return func(t string) bool { return set[t] }
}

// tsOf reads an edge's int64 "ts" property (0 when absent), the
// timestamp connectors aggregate during contraction.
func tsOf(e *graph.Edge) int64 {
	if v, ok := e.Prop("ts").(int64); ok {
		return v
	}
	return 0
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
