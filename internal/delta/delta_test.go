package delta

import (
	"testing"

	"kaskade/internal/graph"
)

// TestEdgeDeltasK1 pins the trivial case: a 1-hop view's delta for a
// new edge is the edge itself, when its endpoints satisfy the types.
func TestEdgeDeltasK1(t *testing.T) {
	g := graph.NewGraph(nil)
	a := g.MustAddVertex("Job", nil)
	b := g.MustAddVertex("File", nil)
	eid := g.MustAddEdge(a, b, "W", graph.Properties{"ts": int64(7)})
	des := EdgeDeltas(g, eid, Config{SrcType: "Job", DstType: "File", Ks: []int{1}})
	if len(des[1]) != 1 {
		t.Fatalf("k=1 delta = %v, want one edge", des[1])
	}
	if de := des[1][0]; de.From != a || de.To != b || de.K != 1 || de.TS != 7 {
		t.Fatalf("k=1 delta = %+v", de)
	}
	// Wrong endpoint type: no delta.
	des = EdgeDeltas(g, eid, Config{SrcType: "File", DstType: "File", Ks: []int{1}})
	if len(des[1]) != 0 {
		t.Fatalf("type-mismatched delta = %v", des[1])
	}
}

// TestEdgeDeltasFilteredType pins the edge filter: a rejected edge type
// yields empty deltas for every k.
func TestEdgeDeltasFilteredType(t *testing.T) {
	g := graph.NewGraph(nil)
	a := g.MustAddVertex("V", nil)
	b := g.MustAddVertex("V", nil)
	eid := g.MustAddEdge(a, b, "OTHER", nil)
	des := EdgeDeltas(g, eid, Config{EdgeTypes: []string{"E"}, Ks: []int{1, 2, 3}})
	for k, d := range des {
		if len(d) != 0 {
			t.Fatalf("k=%d delta for filtered edge: %v", k, d)
		}
	}
}

// TestEdgeDeltasSharedFrontier pins the chain property: one call with
// Ks={1,2,3} produces exactly what three independent per-k calls do.
func TestEdgeDeltasSharedFrontier(t *testing.T) {
	g := graph.NewGraph(nil)
	var ids []graph.VertexID
	for i := 0; i < 6; i++ {
		ids = append(ids, g.MustAddVertex("V", nil))
	}
	// A diamond with a chord so the new edge sits at several positions.
	g.MustAddEdge(ids[0], ids[1], "E", graph.Properties{"ts": int64(1)})
	g.MustAddEdge(ids[1], ids[2], "E", graph.Properties{"ts": int64(2)})
	g.MustAddEdge(ids[2], ids[3], "E", graph.Properties{"ts": int64(3)})
	g.MustAddEdge(ids[3], ids[4], "E", graph.Properties{"ts": int64(4)})
	eid := g.MustAddEdge(ids[2], ids[5], "E", graph.Properties{"ts": int64(5)})

	shared := EdgeDeltas(g, eid, Config{Ks: []int{1, 2, 3}})
	for _, k := range []int{1, 2, 3} {
		solo := EdgeDeltas(g, eid, Config{Ks: []int{k}})
		if len(shared[k]) != len(solo[k]) {
			t.Fatalf("k=%d: shared %d edges, solo %d", k, len(shared[k]), len(solo[k]))
		}
		for i := range solo[k] {
			if shared[k][i] != solo[k][i] {
				t.Fatalf("k=%d edge %d: shared %+v, solo %+v", k, i, shared[k][i], solo[k][i])
			}
		}
	}
	if len(shared[1]) == 0 || len(shared[2]) == 0 || len(shared[3]) == 0 {
		t.Fatalf("frontier exercised nothing: %d/%d/%d", len(shared[1]), len(shared[2]), len(shared[3]))
	}
}

// TestEdgeDeltasEdgeUniqueness pins path edge-uniqueness across
// prefix+edge+suffix on a 2-cycle: the back edge may not be reused on
// both sides of the new edge.
func TestEdgeDeltasEdgeUniqueness(t *testing.T) {
	g := graph.NewGraph(nil)
	a := g.MustAddVertex("V", nil)
	b := g.MustAddVertex("V", nil)
	g.MustAddEdge(a, b, "E", nil)
	eid := g.MustAddEdge(b, a, "E", nil)
	des := EdgeDeltas(g, eid, Config{Ks: []int{2, 3}})
	// k=2: b->(new)->a->(old)->b and a->(old)->b->(new)->a.
	if len(des[2]) != 2 {
		t.Fatalf("k=2 deltas = %v, want 2", des[2])
	}
	// k=3 would need the old edge on both sides of the new one.
	if len(des[3]) != 0 {
		t.Fatalf("k=3 reused an edge: %v", des[3])
	}
}

// TestEdgeDeltasNegativeTS pins timestamp aggregation: max over the
// path's edges, with absent ts reading as 0 and negative values never
// masked by a zero seed.
func TestEdgeDeltasNegativeTS(t *testing.T) {
	g := graph.NewGraph(nil)
	a := g.MustAddVertex("V", nil)
	b := g.MustAddVertex("V", nil)
	c := g.MustAddVertex("V", nil)
	g.MustAddEdge(a, b, "E", graph.Properties{"ts": int64(-5)})
	eid := g.MustAddEdge(b, c, "E", graph.Properties{"ts": int64(-3)})
	des := EdgeDeltas(g, eid, Config{Ks: []int{2}})
	if len(des[2]) != 1 || des[2][0].TS != -3 {
		t.Fatalf("k=2 delta = %v, want one edge with ts=-3", des[2])
	}
}
