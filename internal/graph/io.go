package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The serialization format is line-oriented and human-greppable, with
// one record per line:
//
//	S	<vertexTypes json>	<edgeTypes json>	[<prop decls json>]
//	V	<id>	<type>	<props json>
//	E	<from>	<to>	<type>	<props json>
//
// The schema header is optional, and its fourth field (property
// declarations) is written only when the schema declares any — older
// three-field headers load unchanged. Vertex IDs in the file are the
// graph's dense IDs, so a round-trip preserves identity. Property bags
// serialize as JSON objects; integer values round-trip as int64 (JSON
// numbers without a fraction decode to int64, not float64).

type schemaHeader struct {
	VertexTypes []string   `json:"vertexTypes"`
	EdgeTypes   []EdgeType `json:"edgeTypes"`
	Props       []PropDecl `json:"props,omitempty"`
}

// Save writes the graph (including its schema, when present) to w.
func Save(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if s := g.Schema(); s != nil {
		hdr := schemaHeader{VertexTypes: s.VertexTypes(), EdgeTypes: s.EdgeTypes(), Props: s.PropertyDecls()}
		vt, err := json.Marshal(hdr.VertexTypes)
		if err != nil {
			return err
		}
		et, err := json.Marshal(hdr.EdgeTypes)
		if err != nil {
			return err
		}
		if len(hdr.Props) > 0 {
			pd, err := json.Marshal(hdr.Props)
			if err != nil {
				return err
			}
			fmt.Fprintf(bw, "S\t%s\t%s\t%s\n", vt, et, pd)
		} else {
			fmt.Fprintf(bw, "S\t%s\t%s\n", vt, et)
		}
	}
	var err error
	g.EachVertex(func(v *Vertex) {
		if err != nil {
			return
		}
		var props []byte
		props, err = marshalProps(v.Props)
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(bw, "V\t%d\t%s\t%s\n", v.ID, v.Type, props)
	})
	if err != nil {
		return err
	}
	g.EachEdge(func(e *Edge) {
		if err != nil {
			return
		}
		var props []byte
		props, err = marshalProps(e.Props)
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(bw, "E\t%d\t%d\t%s\t%s\n", e.From, e.To, e.Type, props)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads a graph written by Save. Vertices must appear before the
// edges that reference them (Save guarantees this) and carry dense IDs
// in file order.
func Load(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var g *Graph
	// Declared properties grouped by owning type, so each V/E record is
	// checked against only its own type's declarations (sorted order,
	// from PropertyDecls — the first violation reported is stable).
	var declsByType map[string][]PropDecl
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		switch fields[0] {
		case "S":
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: schema header after records", lineNo)
			}
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: malformed schema header", lineNo)
			}
			var vts []string
			var ets []EdgeType
			if err := json.Unmarshal([]byte(fields[1]), &vts); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			if err := json.Unmarshal([]byte(fields[2]), &ets); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			schema, err := NewSchema(vts, ets)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			if len(fields) == 4 {
				var decls []PropDecl
				if err := json.Unmarshal([]byte(fields[3]), &decls); err != nil {
					return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
				}
				for _, d := range decls {
					if err := schema.DeclareProperty(d.Type, d.Prop, d.Kind); err != nil {
						return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
					}
				}
				declsByType = make(map[string][]PropDecl)
				for _, d := range schema.PropertyDecls() {
					declsByType[d.Type] = append(declsByType[d.Type], d)
				}
			}
			g = NewGraph(schema)
		case "V":
			if g == nil {
				g = NewGraph(nil)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: malformed vertex record", lineNo)
			}
			wantID, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex id: %w", lineNo, err)
			}
			props, err := unmarshalProps(fields[3])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			if err := checkLoadedProps(declsByType, fields[2], props); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			id, err := g.AddVertex(fields[2], props)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			if int(id) != wantID {
				return nil, fmt.Errorf("graph: line %d: non-dense vertex id %d (expected %d)", lineNo, wantID, id)
			}
		case "E":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: edge before any vertex", lineNo)
			}
			if len(fields) != 5 {
				return nil, fmt.Errorf("graph: line %d: malformed edge record", lineNo)
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge endpoints", lineNo)
			}
			props, err := unmarshalProps(fields[4])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			if err := checkLoadedProps(declsByType, fields[3], props); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			if _, err := g.AddEdge(VertexID(from), VertexID(to), fields[3], props); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		g = NewGraph(nil)
	}
	// A loaded graph is complete and read-only from here on; freezing now
	// means the first query or traversal finds the CSR index ready (and
	// builds the property columns, whose declared-kind validation is a
	// load error here, not a later panic).
	if _, err := g.FreezeChecked(); err != nil {
		return nil, err
	}
	return g, nil
}

// checkLoadedProps validates one loaded record's properties against its
// type's declarations (per-type decls are in sorted order).
func checkLoadedProps(declsByType map[string][]PropDecl, typeName string, props Properties) error {
	if len(props) == 0 {
		return nil
	}
	for _, d := range declsByType[typeName] {
		v := props[d.Prop]
		if v == nil {
			continue
		}
		if err := checkPropValue(d.Type, d.Prop, d.Kind, v); err != nil {
			return err
		}
	}
	return nil
}

func marshalProps(p Properties) ([]byte, error) {
	if len(p) == 0 {
		return []byte("{}"), nil
	}
	return json.Marshal(p)
}

// unmarshalProps decodes a JSON property bag, turning integral JSON
// numbers back into int64 (json.Unmarshal's default float64 would break
// property comparisons after a round-trip).
func unmarshalProps(s string) (Properties, error) {
	if s == "{}" {
		return nil, nil
	}
	dec := json.NewDecoder(strings.NewReader(s))
	dec.UseNumber()
	var raw map[string]any
	if err := dec.Decode(&raw); err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, nil
	}
	props := make(Properties, len(raw))
	for k, v := range raw {
		if num, ok := v.(json.Number); ok {
			if i, err := num.Int64(); err == nil {
				props[k] = i
				continue
			}
			f, err := num.Float64()
			if err != nil {
				return nil, fmt.Errorf("graph: bad number %q for property %s", num, k)
			}
			props[k] = f
			continue
		}
		props[k] = v
	}
	return props, nil
}
