package graph

import (
	"bytes"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, g *Graph) *Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, g); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return back
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := MustSchema(
		[]string{"Job", "File"},
		[]EdgeType{
			{From: "Job", To: "File", Name: "W"},
			{From: "File", To: "Job", Name: "R"},
		},
	)
	g := NewGraph(s)
	j := g.MustAddVertex("Job", Properties{"name": "j1", "CPU": int64(42), "load": 0.5})
	f := g.MustAddVertex("File", nil)
	g.MustAddEdge(j, f, "W", Properties{"ts": int64(7)})
	g.MustAddEdge(f, j, "R", nil)

	back := roundTrip(t, g)
	if back.NumVertices() != 2 || back.NumEdges() != 2 {
		t.Fatalf("sizes: %v", back)
	}
	// Schema survived.
	if back.Schema() == nil || !back.Schema().AllowsEdge("Job", "File", "W") {
		t.Error("schema lost in round trip")
	}
	// Property types survived: int64 stays int64, float stays float.
	v := back.Vertex(0)
	if v.Prop("CPU") != int64(42) {
		t.Errorf("CPU = %v (%T), want int64 42", v.Prop("CPU"), v.Prop("CPU"))
	}
	if v.Prop("load") != 0.5 {
		t.Errorf("load = %v, want 0.5", v.Prop("load"))
	}
	if v.Prop("name") != "j1" {
		t.Errorf("name = %v", v.Prop("name"))
	}
	// Edge identity and properties survived.
	e := back.Edge(0)
	if e.From != j || e.To != f || e.Type != "W" || e.Prop("ts") != int64(7) {
		t.Errorf("edge 0 = %+v", e)
	}
}

func TestSaveLoadNoSchema(t *testing.T) {
	g := NewGraph(nil)
	a := g.MustAddVertex("V", nil)
	b := g.MustAddVertex("V", nil)
	g.MustAddEdge(a, b, "E", nil)
	back := roundTrip(t, g)
	if back.Schema() != nil {
		t.Error("schema materialized from nothing")
	}
	if back.NumEdges() != 1 {
		t.Errorf("|E| = %d", back.NumEdges())
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	back := roundTrip(t, NewGraph(nil))
	if back.NumVertices() != 0 || back.NumEdges() != 0 {
		t.Errorf("empty round trip: %v", back)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string]string{
		"edge before vertex": "E\t0\t1\tX\t{}",
		"unknown record":     "Z\tfoo",
		"malformed vertex":   "V\t0\tJob",
		"bad vertex id":      "V\tzero\tJob\t{}",
		"non-dense id":       "V\t5\tJob\t{}",
		"bad props":          "V\t0\tJob\t{not json}",
		"schema after data":  "V\t0\tJob\t{}\nS\t[\"Job\"]\t[]",
		"edge bad endpoint":  "V\t0\tV\t{}\nE\t0\tx\tT\t{}",
	}
	for name, src := range cases {
		if _, err := Load(strings.NewReader(src)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestLoadSkipsCommentsAndBlanks(t *testing.T) {
	src := "# a comment\n\nV\t0\tV\t{}\nV\t1\tV\t{}\n# another\nE\t0\t1\tT\t{}\n"
	g, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Errorf("loaded %v", g)
	}
}

func TestLoadEnforcesSchema(t *testing.T) {
	src := "S\t[\"Job\"]\t[]\nV\t0\tTask\t{}\n"
	if _, err := Load(strings.NewReader(src)); err == nil {
		t.Error("schema-violating vertex accepted")
	}
}
