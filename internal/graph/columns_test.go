package graph

import (
	"strings"
	"testing"
)

// columnSchema declares one property of every kind on Job.
func columnSchema(t *testing.T) *Schema {
	t.Helper()
	s := MustSchema(
		[]string{"Job", "File"},
		[]EdgeType{{From: "Job", To: "File", Name: "W"}},
	)
	for _, d := range []struct {
		prop string
		kind PropKind
	}{
		{"CPU", PropInt},
		{"load", PropFloat},
		{"name", PropString},
		{"done", PropBool},
	} {
		if err := s.DeclareProperty("Job", d.prop, d.kind); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestColumnsBuiltAtFreeze(t *testing.T) {
	g := NewGraph(columnSchema(t))
	names := []string{"a", "b", "a", "c"}
	for i := 0; i < 4; i++ {
		props := Properties{
			"CPU":  int64(i * 100),
			"load": float64(i) / 2,
			"name": names[i],
			"done": i%2 == 0,
		}
		if i == 3 {
			props = nil // one vertex with no properties at all
		}
		g.MustAddVertex("Job", props)
	}
	g.MustAddVertex("File", Properties{"name": "undeclared-type-prop"})

	f, err := g.FreezeChecked()
	if err != nil {
		t.Fatal(err)
	}
	count, bytes := f.ColumnStats()
	if count != 4 {
		t.Fatalf("ColumnStats count = %d, want 4 (Job only; File declares nothing)", count)
	}
	if bytes <= 0 {
		t.Errorf("ColumnStats bytes = %d, want > 0", bytes)
	}

	// Columnar reads are byte-identical to the property map.
	for v := VertexID(0); v < 4; v++ {
		for _, prop := range []string{"CPU", "load", "name", "done"} {
			got, covered := f.VertexPropColumnar(v, prop)
			if !covered {
				t.Fatalf("vertex %d %s: not covered", v, prop)
			}
			if want := g.Vertex(v).Prop(prop); got != want {
				t.Errorf("vertex %d %s: columnar %v (%T) != map %v (%T)", v, prop, got, got, want, want)
			}
		}
		// Undeclared property: not covered, caller falls back to the map.
		if _, covered := f.VertexPropColumnar(v, "extra"); covered {
			t.Errorf("vertex %d: undeclared property reported covered", v)
		}
	}
	// A type with no declarations has no columns.
	if _, covered := f.VertexPropColumnar(4, "name"); covered {
		t.Error("File.name covered without a declaration")
	}

	// Typed handle accessors agree with the boxed values, including
	// string interning ("a" appears twice, dict holds it once).
	col, ok := f.Column("Job", "name")
	if !ok || col.Kind() != PropString {
		t.Fatalf("Column(Job, name) = %v, %v", col, ok)
	}
	for i, want := range names[:3] {
		s, ok := col.Str(VertexID(i))
		if !ok || s != want {
			t.Errorf("Str(%d) = %q, %v, want %q", i, s, ok, want)
		}
	}
	if _, ok := col.Str(3); ok {
		t.Error("Str reported a value for the property-less vertex")
	}
	ints, ok := f.Column("Job", "CPU")
	if !ok {
		t.Fatal("Column(Job, CPU) missing")
	}
	if v, ok := ints.Int(2); !ok || v != 200 {
		t.Errorf("Int(2) = %d, %v, want 200", v, ok)
	}
	if _, ok := f.Column("File", "name"); ok {
		t.Error("Column(File, name) exists without a declaration")
	}
	if _, ok := f.Column("Nope", "x"); ok {
		t.Error("Column on unknown type exists")
	}
}

func TestFreezeCheckedRejectsLyingDeclaration(t *testing.T) {
	g := NewGraph(columnSchema(t))
	g.MustAddVertex("Job", Properties{"CPU": 3.5}) // declared PropInt
	if _, err := g.FreezeChecked(); err == nil ||
		!strings.Contains(err.Error(), "declared int, holds float64") {
		t.Fatalf("FreezeChecked err = %v, want declared-kind violation", err)
	}
	// Freeze (the unchecked form) panics rather than returning a stale
	// or partially-built view.
	defer func() {
		if recover() == nil {
			t.Error("Freeze did not panic on a declared-kind violation")
		}
	}()
	g.Freeze()
}

func TestCachedFrozen(t *testing.T) {
	g := NewGraph(nil)
	g.MustAddVertex("V", nil)
	if g.CachedFrozen() != nil {
		t.Fatal("CachedFrozen non-nil before any freeze")
	}
	f := g.Freeze()
	if g.CachedFrozen() != f {
		t.Fatal("CachedFrozen did not return the memoized view")
	}
}

func TestSaveLoadPropertyDecls(t *testing.T) {
	g := NewGraph(columnSchema(t))
	g.MustAddVertex("Job", Properties{"CPU": int64(7), "name": "j"})
	back := roundTrip(t, g)
	decls := back.Schema().PropertyDecls()
	if len(decls) != 4 {
		t.Fatalf("loaded %d property declarations, want 4: %v", len(decls), decls)
	}
	if k, ok := back.Schema().PropertyKind("Job", "CPU"); !ok || k != PropInt {
		t.Errorf("Job.CPU kind = %v, %v, want PropInt", k, ok)
	}
	// Load freezes eagerly, so the columns already exist.
	fz := back.CachedFrozen()
	if fz == nil {
		t.Fatal("loaded graph has no cached frozen view")
	}
	if count, _ := fz.ColumnStats(); count != 4 {
		t.Errorf("loaded graph has %d columns, want 4", count)
	}
}

func TestLoadRejectsMisdeclaredProperty(t *testing.T) {
	src := "S\t[\"Job\"]\t[]\t[{\"type\":\"Job\",\"prop\":\"CPU\",\"kind\":1}]\n" +
		"V\t0\tJob\t{\"CPU\":1}\n" +
		"V\t1\tJob\t{\"CPU\":2.5}\n"
	_, err := Load(strings.NewReader(src))
	if err == nil {
		t.Fatal("misdeclared property loaded without error")
	}
	// The error names the offending line, not just the freeze.
	if !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "declared int") {
		t.Errorf("err = %v, want line-3 declared-kind violation", err)
	}
}
