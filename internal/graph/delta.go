package graph

import (
	"sync/atomic"
	"time"
)

// Delta-overlay storage: the append-friendly tail that lets a graph
// mutate after a freeze without invalidating the frozen CSR.
//
// A Frozen is built once over the base graph; the first post-freeze
// mutation attaches an overlay to it and every subsequent AddVertex/
// AddEdge lands in the overlay's per-type delta tail instead of
// clearing the cached snapshot. The Frozen accessors (frozen.go,
// columns.go) merge base + tail behind the existing interfaces, so the
// matcher, the predicate prefilter, the algo kernels, and the connector
// DFSes all see one logical graph with no refreeze on the hot path.
// When the tail outgrows its threshold, Compact folds it into a fresh
// base CSR — one O(V+E) build per burst instead of one per mutation.
//
// The overlay leans on the same contract the rest of the package does:
// mutation never runs concurrently with readers. Mutations therefore
// build the overlay's merged structures eagerly with plain writes; the
// only cross-phase handoffs are the graph's frozen pointer (an
// atomic.Pointer, swapped by compaction) and the process-wide counters
// below, which concurrent query workers do update.
//
// SetDeltaOverlay(false) restores the legacy invalidate-on-mutate
// lifecycle; the equivalence suites in internal/exec pin the overlay
// byte-identical to that refreeze baseline (see noDelta there).

// Process-wide delta counters, mirroring csrBuilds/CSRBuilds: overlay-
// resolved reads (a query touched the tail or a merged row), compaction
// folds, and the duration of the most recent fold. Queries read
// concurrently, so these are typed atomics.
var (
	overlayReads     atomic.Int64
	compactionsTotal atomic.Int64
	lastCompactionNS atomic.Int64
)

// OverlayReads returns the process-wide count of frozen-accessor reads
// that were resolved through a delta overlay (tail vertices/edges,
// merged adjacency rows, tail column slots) rather than the base CSR.
func OverlayReads() int64 { return overlayReads.Load() }

// CompactionsTotal returns the process-wide count of tail compactions
// (overlay folds into a fresh base CSR).
func CompactionsTotal() int64 { return compactionsTotal.Load() }

// LastCompactionDuration returns how long the most recent compaction's
// CSR rebuild took (zero before any compaction).
func LastCompactionDuration() time.Duration {
	return time.Duration(lastCompactionNS.Load())
}

// typedKey addresses one merged typed-adjacency run: vertex v's edges
// of interned type t.
type typedKey struct {
	v VertexID
	t int32
}

// tailColumn extends one base property column over the tail vertices of
// its type. Slots are tail-local (assigned in tail insertion order per
// type); vals holds the boxed originals with nil meaning absent, which
// doubles as the presence test. Strings are stored directly rather than
// interned — the tail is small and short-lived by design.
type tailColumn struct {
	vals   []any
	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
}

// overlay is the delta tail attached to a Frozen after its first
// post-freeze mutation. Tail vertices/edges are indexed by
// (id - baseNV) / (id - baseNE); interning tables are extended copies
// of the base tables, so the base Frozen's own tables stay immutable
// across the compaction swap.
type overlay struct {
	baseNV, baseNE int

	vtypes  []string
	vtypeID map[string]int32
	etypes  []string
	etypeID map[string]int32

	vtypeOf  []int32 // tail vertex -> vtypes index
	etypeOf  []int32 // tail edge -> etypes index
	edgeFrom []VertexID
	edgeTo   []VertexID

	// Merged typed-adjacency runs for every (vertex, edge type) pair a
	// tail edge touched: base run (copied once on first touch) plus the
	// tail edges in insertion order — the same insertion-order
	// subsequence invariant the grouped base index provides.
	outTyped map[typedKey][]EdgeID
	inTyped  map[typedKey][]EdgeID

	// Tail column extensions, keyed by base vertex-type ID, parallel to
	// colsByVType[tid]. tailSlot maps a tail vertex to its slot within
	// its type's tail columns (-1: the type has no base columns, so
	// property reads fall back to the map path).
	cols     map[int32][]tailColumn
	tailSlot []int32
	colBytes int64
}

// ensureOverlay attaches (or returns) f's overlay. Called from the
// mutation path only, which never overlaps readers.
func (f *Frozen) ensureOverlay() *overlay {
	if f.ov != nil {
		return f.ov
	}
	ov := &overlay{
		baseNV:   len(f.vtypeOf),
		baseNE:   len(f.etypeOf),
		vtypes:   append([]string(nil), f.vtypes...),
		etypes:   append([]string(nil), f.etypes...),
		vtypeID:  make(map[string]int32, len(f.vtypeID)),
		etypeID:  make(map[string]int32, len(f.etypeID)),
		outTyped: make(map[typedKey][]EdgeID),
		inTyped:  make(map[typedKey][]EdgeID),
		cols:     make(map[int32][]tailColumn),
	}
	for t, id := range f.vtypeID {
		ov.vtypeID[t] = id
	}
	for t, id := range f.etypeID {
		ov.etypeID[t] = id
	}
	f.ov = ov
	return ov
}

// overlayAddVertex lands the freshly appended vertex id in f's tail:
// type interning, and a slot in each of its type's tail columns. The
// caller validated declared properties before appending, so the typed
// column appends below cannot fail — which is what lets Compact rebuild
// unconditionally.
func (f *Frozen) overlayAddVertex(id VertexID) {
	ov := f.ensureOverlay()
	vt := f.g.vertices[id].Type
	tid, ok := ov.vtypeID[vt]
	if !ok {
		tid = int32(len(ov.vtypes))
		ov.vtypeID[vt] = tid
		ov.vtypes = append(ov.vtypes, vt)
	}
	ov.vtypeOf = append(ov.vtypeOf, tid)
	slot := int32(-1)
	if int(tid) < len(f.vtypes) && f.colsByVType != nil && len(f.colsByVType[tid]) > 0 {
		slot = ov.appendColumnSlots(f, tid, id)
	}
	ov.tailSlot = append(ov.tailSlot, slot)
}

// appendColumnSlots extends every base column of type tid with one slot
// holding vertex id's value (nil when absent).
func (ov *overlay) appendColumnSlots(f *Frozen, tid int32, id VertexID) int32 {
	base := f.colsByVType[tid]
	tcs := ov.cols[tid]
	if tcs == nil {
		tcs = make([]tailColumn, len(base))
		ov.cols[tid] = tcs
	}
	slot := int32(len(tcs[0].vals))
	v := &f.g.vertices[id]
	for i := range base {
		c := &base[i]
		tc := &tcs[i]
		val := v.Prop(c.prop)
		tc.vals = append(tc.vals, val)
		ov.colBytes += 24
		switch c.kind {
		case PropInt:
			var x int64
			if val != nil {
				x = val.(int64)
			}
			tc.ints = append(tc.ints, x)
		case PropFloat:
			var x float64
			if val != nil {
				x = val.(float64)
			}
			tc.floats = append(tc.floats, x)
		case PropString:
			var x string
			if val != nil {
				x = val.(string)
			}
			tc.strs = append(tc.strs, x)
			ov.colBytes += int64(len(x))
		case PropBool:
			var x bool
			if val != nil {
				x = val.(bool)
			}
			tc.bools = append(tc.bools, x)
		}
	}
	return slot
}

// overlayAddEdge lands the freshly appended edge id in f's tail: type
// interning, flat endpoints, and both endpoints' merged typed runs.
func (f *Frozen) overlayAddEdge(id EdgeID) {
	ov := f.ensureOverlay()
	e := &f.g.edges[id]
	t, ok := ov.etypeID[e.Type]
	if !ok {
		t = int32(len(ov.etypes))
		ov.etypeID[e.Type] = t
		ov.etypes = append(ov.etypes, e.Type)
	}
	ov.etypeOf = append(ov.etypeOf, t)
	ov.edgeFrom = append(ov.edgeFrom, e.From)
	ov.edgeTo = append(ov.edgeTo, e.To)
	ov.appendTypedRun(f, true, e.From, t, id)
	ov.appendTypedRun(f, false, e.To, t, id)
}

// appendTypedRun extends the merged (v, t) run with id, copying the
// base run on first touch. The merged run stays the insertion-order
// subsequence of the merged row: base edges precede all tail edges.
func (ov *overlay) appendTypedRun(f *Frozen, out bool, v VertexID, t int32, id EdgeID) {
	m := ov.outTyped
	if !out {
		m = ov.inTyped
	}
	k := typedKey{v: v, t: t}
	run, ok := m[k]
	if !ok && int(v) < ov.baseNV {
		var base []EdgeID
		if out {
			base = typedRun(f.outGroupOff, f.outGroups, f.outOff, f.outTyped, v, t)
		} else {
			base = typedRun(f.inGroupOff, f.inGroups, f.inOff, f.inTyped, v, t)
		}
		run = append(make([]EdgeID, 0, len(base)+1), base...)
	}
	m[k] = append(run, id)
}

// checkTailProps eagerly validates declared properties for a vertex
// about to land in the overlay, so a lying value is rejected before it
// mutates anything — the same check the columnar freeze would apply,
// moved to mutation time. This is what guarantees Compact's rebuild
// cannot fail on tail data.
func (g *Graph) checkTailProps(vtype string, props Properties) error {
	if g.schema == nil || len(props) == 0 {
		return nil
	}
	// Map order does not matter for the outcome: every entry is checked
	// and, when several violate, the smallest key's error is reported.
	var badKey string
	var badErr error
	for k, v := range props {
		if err := g.schema.CheckValue(vtype, k, v); err != nil && (badErr == nil || k < badKey) {
			badKey, badErr = k, err
		}
	}
	return badErr
}

// SetDeltaOverlay toggles delta-overlay storage for this graph. It is
// on by default: post-freeze mutations land in the snapshot's tail.
// Off, every mutation invalidates the cached Frozen (the legacy
// freeze-after-every-mutation lifecycle), which is the A/B baseline the
// overlay equivalence suites pin against. Turning it off drops any
// snapshot that already carries a tail.
func (g *Graph) SetDeltaOverlay(on bool) {
	g.noDelta = !on
	if !on {
		if f := g.frozen.Load(); f != nil && f.ov != nil {
			g.frozen.Store(nil)
		}
	}
}

// DeltaOverlayEnabled reports whether post-freeze mutations land in the
// delta tail (true) or invalidate the cached Frozen (false).
func (g *Graph) DeltaOverlayEnabled() bool { return !g.noDelta }

// SetCompactionThreshold overrides the tail size (vertices + edges) at
// which a mutation triggers compaction. n <= 0 restores the default:
// a quarter of the base size, but at least 256.
func (g *Graph) SetCompactionThreshold(n int) { g.compactAt = n }

// defaultCompactMin keeps tiny graphs from compacting on every handful
// of mutations.
const defaultCompactMin = 256

func (g *Graph) compactionThreshold(ov *overlay) int {
	if g.compactAt > 0 {
		return g.compactAt
	}
	th := (ov.baseNV + ov.baseNE) / 4
	if th < defaultCompactMin {
		th = defaultCompactMin
	}
	return th
}

// maybeCompact folds the tail when it exceeds the threshold. Called at
// the end of each overlay mutation, i.e. on the mutation path — queries
// between mutations never pay for it.
func (g *Graph) maybeCompact(f *Frozen) {
	ov := f.ov
	if ov == nil {
		return
	}
	if len(ov.vtypeOf)+len(ov.etypeOf) < g.compactionThreshold(ov) {
		return
	}
	_ = g.Compact()
}

// Compact folds the current snapshot's tail into a fresh base CSR and
// swaps it in atomically. A no-op when there is no snapshot or no tail.
// Tail data cannot fail the rebuild (mutation-time validation), but
// post-freeze SetProp on a declared property can; in that case the
// cached snapshot is dropped so the next Freeze surfaces the error the
// way the legacy lifecycle did.
func (g *Graph) Compact() error {
	f := g.frozen.Load()
	if f == nil || f.ov == nil {
		return nil
	}
	start := time.Now()
	nf, err := buildFrozen(g)
	if err != nil {
		g.frozen.Store(nil)
		return err
	}
	g.frozen.Store(nf)
	g.compactions.Add(1)
	compactionsTotal.Add(1)
	lastCompactionNS.Store(time.Since(start).Nanoseconds())
	return nil
}

// Compactions returns how many times this graph's tail has been folded
// into a fresh base CSR. The workload catalog folds this into its epoch
// so prepared plans and response caches refresh at compaction
// granularity rather than per mutation.
func (g *Graph) Compactions() uint64 { return g.compactions.Load() }

// TailSize reports the snapshot's delta tail: vertices and edges that
// landed after the base CSR was built (0, 0 without an overlay).
func (f *Frozen) TailSize() (verts, edges int) {
	if f.ov == nil {
		return 0, 0
	}
	return len(f.ov.vtypeOf), len(f.ov.etypeOf)
}
