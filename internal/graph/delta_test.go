package graph

import (
	"math/rand"
	"strings"
	"testing"
)

// assertFrozenMatchesGraph compares every Frozen accessor against the
// append-mode accessors of ref, which must hold identical content. It
// is the overlay correctness oracle: ref is a never-frozen twin, so a
// merged base+tail read that diverges from insertion-order truth fails
// here.
func assertFrozenMatchesGraph(t *testing.T, f *Frozen, ref *Graph) {
	t.Helper()
	if f.NumVertices() != ref.NumVertices() || f.NumEdges() != ref.NumEdges() {
		t.Fatalf("sizes: frozen %d/%d, ref %d/%d",
			f.NumVertices(), f.NumEdges(), ref.NumVertices(), ref.NumEdges())
	}
	etypes := make([]string, 0, 4)
	for et := range ref.EdgeTypeCounts() {
		etypes = append(etypes, et)
	}
	etypes = append(etypes, "NOPE")
	for v := 0; v < ref.NumVertices(); v++ {
		id := VertexID(v)
		if f.VertexTypeOf(id) != ref.Vertex(id).Type {
			t.Fatalf("v%d: type %q, want %q", v, f.VertexTypeOf(id), ref.Vertex(id).Type)
		}
		if got, want := f.Out(id), ref.Out(id); !sameEdges(got, want) {
			t.Fatalf("v%d Out = %v, want %v", v, got, want)
		}
		if got, want := f.In(id), ref.In(id); !sameEdges(got, want) {
			t.Fatalf("v%d In = %v, want %v", v, got, want)
		}
		if f.OutDegree(id) != ref.OutDegree(id) || f.InDegree(id) != ref.InDegree(id) {
			t.Fatalf("v%d degrees (%d,%d), want (%d,%d)",
				v, f.OutDegree(id), f.InDegree(id), ref.OutDegree(id), ref.InDegree(id))
		}
		for _, et := range etypes {
			var wantOut, wantIn []EdgeID
			for _, eid := range ref.Out(id) {
				if ref.Edge(eid).Type == et {
					wantOut = append(wantOut, eid)
				}
			}
			for _, eid := range ref.In(id) {
				if ref.Edge(eid).Type == et {
					wantIn = append(wantIn, eid)
				}
			}
			if got := f.OutOfType(id, et); !sameEdges(got, wantOut) {
				t.Fatalf("v%d OutOfType(%s) = %v, want %v", v, et, got, wantOut)
			}
			if got := f.InOfType(id, et); !sameEdges(got, wantIn) {
				t.Fatalf("v%d InOfType(%s) = %v, want %v", v, et, got, wantIn)
			}
		}
	}
	for e := 0; e < ref.NumEdges(); e++ {
		eid := EdgeID(e)
		ed := ref.Edge(eid)
		if f.From(eid) != ed.From || f.To(eid) != ed.To || f.EdgeTypeOf(eid) != ed.Type {
			t.Fatalf("edge %d: (%d,%d,%s), want (%d,%d,%s)",
				e, f.From(eid), f.To(eid), f.EdgeTypeOf(eid), ed.From, ed.To, ed.Type)
		}
		if f.EdgeTypeOf(eid) != "" {
			tid, ok := f.EdgeTypeID(ed.Type)
			if !ok {
				t.Fatalf("edge type %q not resolvable", ed.Type)
			}
			if f.EdgeTypeIDOf(eid) != tid {
				t.Fatalf("edge %d: interned type %d, want %d", e, f.EdgeTypeIDOf(eid), tid)
			}
		}
	}
	for _, vt := range append(ref.VertexTypes(), "NOPE") {
		want := ref.VerticesOfType(vt)
		got := f.VerticesOfType(vt)
		if len(want) != len(got) {
			t.Fatalf("VerticesOfType(%s): %d, want %d", vt, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("VerticesOfType(%s)[%d] = %d, want %d", vt, i, got[i], want[i])
			}
		}
	}
}

func sameEdges(a, b []EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDeltaOverlayMatchesFreshFreeze drives randomized interleaved
// mutations into a frozen graph (overlay path) and a never-frozen twin,
// checking every accessor after each burst. The same mutations are also
// checked after a forced compaction — the folded base must read
// identically.
func TestDeltaOverlayMatchesFreshFreeze(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomFrozenGraph(t, 3, 60, 240)
	ref := NewGraph(nil)
	g.EachVertex(func(v *Vertex) { ref.MustAddVertex(v.Type, v.Props) })
	g.EachEdge(func(e *Edge) { ref.MustAddEdge(e.From, e.To, e.Type, e.Props) })

	f := g.Freeze()
	builds := CSRBuilds()
	vtypes := []string{"Job", "File", "Task", "Machine", "User"} // User: tail-only type
	etypes := []string{"W", "R", "T", "X"}                       // X: tail-only type
	for burst := 0; burst < 8; burst++ {
		for i := 0; i < 25; i++ {
			if rng.Intn(3) == 0 {
				vt := vtypes[rng.Intn(len(vtypes))]
				g.MustAddVertex(vt, nil)
				ref.MustAddVertex(vt, nil)
			} else {
				from := VertexID(rng.Intn(g.NumVertices()))
				to := VertexID(rng.Intn(g.NumVertices()))
				et := etypes[rng.Intn(len(etypes))]
				g.MustAddEdge(from, to, et, nil)
				ref.MustAddEdge(from, to, et, nil)
			}
		}
		if got := g.Freeze(); got != f {
			t.Fatalf("burst %d: snapshot pointer changed without compaction", burst)
		}
		assertFrozenMatchesGraph(t, f, ref)
	}
	if got := CSRBuilds(); got != builds {
		t.Fatalf("overlay bursts rebuilt the CSR %d times", got-builds)
	}
	if tv, te := f.TailSize(); tv+te == 0 {
		t.Fatal("no tail accumulated")
	}

	// Fold and re-verify: the compacted base must read identically.
	if err := g.Compact(); err != nil {
		t.Fatal(err)
	}
	nf := g.Freeze()
	if nf == f {
		t.Fatal("Compact did not swap in a fresh snapshot")
	}
	if tv, te := nf.TailSize(); tv != 0 || te != 0 {
		t.Fatalf("compacted snapshot has tail (%d, %d)", tv, te)
	}
	assertFrozenMatchesGraph(t, nf, ref)
	if g.Compactions() == 0 || CompactionsTotal() == 0 {
		t.Fatal("compaction counters did not advance")
	}
	if LastCompactionDuration() <= 0 {
		t.Fatal("last-compaction duration not recorded")
	}
}

// TestDeltaOverlayColumns pins tail property reads: declared columns
// cover tail vertices (typed accessors and VertexPropColumnar match the
// property map, presence included), tail-only vertex types fall back to
// the map path, and ColumnStats grows with the tail.
func TestDeltaOverlayColumns(t *testing.T) {
	s := MustSchema([]string{"Job", "File"}, []EdgeType{
		{From: "Job", To: "File", Name: "W"},
	})
	if err := s.DeclareProperty("Job", "cpu", PropInt); err != nil {
		t.Fatal(err)
	}
	if err := s.DeclareProperty("Job", "load", PropFloat); err != nil {
		t.Fatal(err)
	}
	if err := s.DeclareProperty("Job", "pool", PropString); err != nil {
		t.Fatal(err)
	}
	if err := s.DeclareProperty("Job", "prod", PropBool); err != nil {
		t.Fatal(err)
	}
	g := NewGraph(s)
	g.MustAddVertex("Job", Properties{"cpu": int64(4), "load": 0.5, "pool": "a", "prod": true})
	g.MustAddVertex("File", nil)
	f := g.Freeze()
	_, baseBytes := f.ColumnStats()

	// Tail vertices: full bag, partial bag, empty bag.
	tail := []VertexID{
		g.MustAddVertex("Job", Properties{"cpu": int64(16), "load": 2.25, "pool": "b", "prod": false}),
		g.MustAddVertex("Job", Properties{"cpu": int64(8)}),
		g.MustAddVertex("Job", nil),
	}
	if g.Freeze() != f {
		t.Fatal("tail vertices dropped the snapshot")
	}
	for _, v := range tail {
		for _, key := range []string{"cpu", "load", "pool", "prod"} {
			want := g.Vertex(v).Prop(key)
			got, covered := f.VertexPropColumnar(v, key)
			if !covered {
				t.Fatalf("v%d %s not covered", v, key)
			}
			if got != want {
				t.Fatalf("v%d %s = %v, want %v", v, key, got, want)
			}
		}
		if _, covered := f.VertexPropColumnar(v, "undeclared"); covered {
			t.Fatalf("v%d: undeclared key covered", v)
		}
	}
	// Typed column handles over mixed base+tail candidates.
	jobs := f.VerticesOfType("Job")
	for _, tc := range []struct {
		key  string
		read func(PropColumn, VertexID) (any, bool)
	}{
		{"cpu", func(pc PropColumn, v VertexID) (any, bool) { x, ok := pc.Int(v); return x, ok }},
		{"load", func(pc PropColumn, v VertexID) (any, bool) { x, ok := pc.Float(v); return x, ok }},
		{"pool", func(pc PropColumn, v VertexID) (any, bool) { x, ok := pc.Str(v); return x, ok }},
		{"prod", func(pc PropColumn, v VertexID) (any, bool) { x, ok := pc.Bool(v); return x, ok }},
	} {
		pc, ok := f.Column("Job", tc.key)
		if !ok {
			t.Fatalf("Column(Job, %s) not resolved", tc.key)
		}
		for _, v := range jobs {
			want := g.Vertex(v).Prop(tc.key)
			got, present := tc.read(pc, v)
			if present != (want != nil) {
				t.Fatalf("v%d %s: present=%v, want %v", v, tc.key, present, want != nil)
			}
			if present && got != want {
				t.Fatalf("v%d %s = %v, want %v", v, tc.key, got, want)
			}
		}
	}
	if _, bytes := f.ColumnStats(); bytes <= baseBytes {
		t.Fatalf("ColumnStats bytes did not grow with the tail (%d <= %d)", bytes, baseBytes)
	}
}

// TestDeltaTailPropValidation pins mutation-time validation: a declared
// property holding the wrong dynamic type is rejected before anything
// mutates, so the tail can never poison a later compaction.
func TestDeltaTailPropValidation(t *testing.T) {
	s := MustSchema([]string{"Job"}, nil)
	if err := s.DeclareProperty("Job", "cpu", PropInt); err != nil {
		t.Fatal(err)
	}
	g := NewGraph(s)
	g.MustAddVertex("Job", Properties{"cpu": int64(1)})
	g.Freeze()
	nv := g.NumVertices()
	_, err := g.AddVertex("Job", Properties{"cpu": "lots"})
	if err == nil || !strings.Contains(err.Error(), "declared") {
		t.Fatalf("lying tail property accepted: %v", err)
	}
	if g.NumVertices() != nv {
		t.Fatal("rejected mutation landed anyway")
	}
	if err := g.Compact(); err != nil {
		t.Fatalf("compaction failed after rejected mutation: %v", err)
	}
}

// TestCompactionThreshold pins automatic folding: once the tail crosses
// SetCompactionThreshold, the mutation path compacts and the snapshot
// pointer swaps.
func TestCompactionThreshold(t *testing.T) {
	g := NewGraph(nil)
	a := g.MustAddVertex("V", nil)
	g.MustAddVertex("V", nil)
	f := g.Freeze()
	g.SetCompactionThreshold(10)
	for i := 0; i < 9; i++ {
		g.MustAddEdge(a, 1, "E", nil)
	}
	if g.Freeze() != f {
		t.Fatal("compacted below threshold")
	}
	g.MustAddEdge(a, 1, "E", nil) // tenth tail entry: crosses the threshold
	nf := g.Freeze()
	if nf == f {
		t.Fatal("threshold crossing did not compact")
	}
	if tv, te := nf.TailSize(); tv != 0 || te != 0 {
		t.Fatalf("post-compaction tail (%d, %d)", tv, te)
	}
	if nf.NumEdges() != 10 {
		t.Fatalf("compacted |E| = %d, want 10", nf.NumEdges())
	}
	if g.Compactions() != 1 {
		t.Fatalf("Compactions = %d, want 1", g.Compactions())
	}
}

// TestCompactNoops pins Compact's no-op cases: no snapshot, and a
// snapshot without a tail.
func TestCompactNoops(t *testing.T) {
	g := NewGraph(nil)
	g.MustAddVertex("V", nil)
	if err := g.Compact(); err != nil {
		t.Fatal(err)
	}
	if g.Compactions() != 0 {
		t.Fatal("compacted without a snapshot")
	}
	f := g.Freeze()
	if err := g.Compact(); err != nil {
		t.Fatal(err)
	}
	if g.Compactions() != 0 || g.Freeze() != f {
		t.Fatal("compacted a tail-less snapshot")
	}
}

// TestSetDeltaOverlayDropsTail pins the A/B switch: turning the overlay
// off drops a snapshot that carries a tail, and subsequent mutations
// invalidate instead of appending.
func TestSetDeltaOverlayDropsTail(t *testing.T) {
	g := NewGraph(nil)
	a := g.MustAddVertex("V", nil)
	b := g.MustAddVertex("V", nil)
	f := g.Freeze()
	g.MustAddEdge(a, b, "E", nil)
	if g.CachedFrozen() != f {
		t.Fatal("overlay mutation dropped the snapshot")
	}
	g.SetDeltaOverlay(false)
	if g.CachedFrozen() != nil {
		t.Fatal("disabling the overlay kept a tailed snapshot")
	}
	if g.DeltaOverlayEnabled() {
		t.Fatal("DeltaOverlayEnabled after SetDeltaOverlay(false)")
	}
	f2 := g.Freeze()
	g.MustAddEdge(b, a, "E", nil)
	if g.CachedFrozen() != nil {
		t.Fatal("noDelta mutation kept the snapshot")
	}
	if f2.NumEdges() != 1 {
		t.Fatalf("noDelta snapshot mutated: |E|=%d", f2.NumEdges())
	}
	g.SetDeltaOverlay(true)
	f3 := g.Freeze()
	g.MustAddEdge(a, b, "E", nil)
	if g.CachedFrozen() != f3 {
		t.Fatal("re-enabled overlay did not append to the snapshot")
	}
}
