package graph

import (
	"math/rand"
	"sync"
	"testing"
)

func randomFrozenGraph(t testing.TB, seed int64, nv, ne int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(nil)
	vtypes := []string{"Job", "File", "Task", "Machine"}
	etypes := []string{"W", "R", "T"}
	for i := 0; i < nv; i++ {
		g.MustAddVertex(vtypes[rng.Intn(len(vtypes))], nil)
	}
	for i := 0; i < ne; i++ {
		g.MustAddEdge(VertexID(rng.Intn(nv)), VertexID(rng.Intn(nv)),
			etypes[rng.Intn(len(etypes))], nil)
	}
	return g
}

// TestFrozenPreservesAdjacencyOrder proves the CSR rows byte-identical
// to the append-mode accessors: Out/In match Graph.Out/In exactly, and
// OutOfType/InOfType are the insertion-order subsequences a per-edge
// type filter would produce.
func TestFrozenPreservesAdjacencyOrder(t *testing.T) {
	g := randomFrozenGraph(t, 1, 200, 1500)
	f := g.Freeze()
	if f.NumVertices() != g.NumVertices() || f.NumEdges() != g.NumEdges() {
		t.Fatalf("sizes: frozen %d/%d, graph %d/%d",
			f.NumVertices(), f.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		id := VertexID(v)
		for _, pair := range []struct {
			name      string
			want, got []EdgeID
			wantDeg   int
			gotDeg    int
		}{
			{"out", g.Out(id), f.Out(id), g.OutDegree(id), f.OutDegree(id)},
			{"in", g.In(id), f.In(id), g.InDegree(id), f.InDegree(id)},
		} {
			if len(pair.want) != len(pair.got) || pair.wantDeg != pair.gotDeg {
				t.Fatalf("v%d %s: len %d/%d deg %d/%d", v, pair.name,
					len(pair.got), len(pair.want), pair.gotDeg, pair.wantDeg)
			}
			for i := range pair.want {
				if pair.want[i] != pair.got[i] {
					t.Fatalf("v%d %s[%d] = %d, want %d", v, pair.name, i, pair.got[i], pair.want[i])
				}
			}
		}
		// Typed groups == filtered insertion order.
		for _, et := range []string{"W", "R", "T", "NOPE"} {
			var want []EdgeID
			for _, eid := range g.Out(id) {
				if g.Edge(eid).Type == et {
					want = append(want, eid)
				}
			}
			got := f.OutOfType(id, et)
			if len(want) != len(got) {
				t.Fatalf("v%d OutOfType(%s): %d edges, want %d", v, et, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("v%d OutOfType(%s)[%d] = %d, want %d", v, et, i, got[i], want[i])
				}
			}
			var wantIn []EdgeID
			for _, eid := range g.In(id) {
				if g.Edge(eid).Type == et {
					wantIn = append(wantIn, eid)
				}
			}
			gotIn := f.InOfType(id, et)
			if len(wantIn) != len(gotIn) {
				t.Fatalf("v%d InOfType(%s): %d edges, want %d", v, et, len(gotIn), len(wantIn))
			}
			for i := range wantIn {
				if wantIn[i] != gotIn[i] {
					t.Fatalf("v%d InOfType(%s)[%d] = %d, want %d", v, et, i, gotIn[i], wantIn[i])
				}
			}
		}
	}
	// Flat endpoint/type arrays match the records.
	for e := 0; e < g.NumEdges(); e++ {
		eid := EdgeID(e)
		ed := g.Edge(eid)
		if f.From(eid) != ed.From || f.To(eid) != ed.To || f.EdgeTypeOf(eid) != ed.Type {
			t.Fatalf("edge %d: frozen (%d,%d,%s) != record (%d,%d,%s)",
				e, f.From(eid), f.To(eid), f.EdgeTypeOf(eid), ed.From, ed.To, ed.Type)
		}
	}
	// Vertex types and the per-type index.
	for v := 0; v < g.NumVertices(); v++ {
		if f.VertexTypeOf(VertexID(v)) != g.Vertex(VertexID(v)).Type {
			t.Fatalf("vertex %d type mismatch", v)
		}
	}
	for _, vt := range append(g.VertexTypes(), "NOPE") {
		want := g.VerticesOfType(vt)
		got := f.VerticesOfType(vt)
		if len(want) != len(got) {
			t.Fatalf("VerticesOfType(%s): %d, want %d", vt, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("VerticesOfType(%s)[%d] mismatch", vt, i)
			}
		}
	}
}

// TestFreezeMemoizesAndInvalidates pins both snapshot lifecycles. With
// the delta overlay (the default), Freeze caches, mutation lands in the
// cached snapshot's tail (same pointer, live counts), and no rebuild
// happens. With the overlay disabled, mutation invalidates and refreeze
// reflects the mutation — the legacy lifecycle the equivalence suites
// use as their baseline.
func TestFreezeMemoizesAndInvalidates(t *testing.T) {
	t.Run("overlay", func(t *testing.T) {
		g := NewGraph(nil)
		a := g.MustAddVertex("V", nil)
		b := g.MustAddVertex("V", nil)
		g.MustAddEdge(a, b, "E", nil)
		f1 := g.Freeze()
		if f2 := g.Freeze(); f1 != f2 {
			t.Fatal("Freeze did not memoize")
		}
		builds := CSRBuilds()
		g.MustAddEdge(b, a, "E", nil)
		f3 := g.Freeze()
		if f3 != f1 {
			t.Fatal("mutation dropped the overlay snapshot")
		}
		if f3.NumEdges() != 2 || len(f3.In(a)) != 1 {
			t.Fatalf("overlay view stale: |E|=%d, in(a)=%d", f3.NumEdges(), len(f3.In(a)))
		}
		if tv, te := f3.TailSize(); tv != 0 || te != 1 {
			t.Fatalf("TailSize = (%d, %d), want (0, 1)", tv, te)
		}
		if got := CSRBuilds(); got != builds {
			t.Fatalf("overlay mutation rebuilt the CSR (%d builds)", got-builds)
		}
	})
	t.Run("noDelta", func(t *testing.T) {
		g := NewGraph(nil)
		g.SetDeltaOverlay(false)
		a := g.MustAddVertex("V", nil)
		b := g.MustAddVertex("V", nil)
		g.MustAddEdge(a, b, "E", nil)
		f1 := g.Freeze()
		if f2 := g.Freeze(); f1 != f2 {
			t.Fatal("Freeze did not memoize")
		}
		g.MustAddEdge(b, a, "E", nil)
		f3 := g.Freeze()
		if f3 == f1 {
			t.Fatal("mutation did not invalidate the frozen cache")
		}
		if f3.NumEdges() != 2 || len(f3.In(a)) != 1 {
			t.Fatalf("refrozen view stale: |E|=%d, in(a)=%d", f3.NumEdges(), len(f3.In(a)))
		}
		// The old view still describes the old state (immutably).
		if f1.NumEdges() != 1 {
			t.Fatalf("old frozen view changed: |E|=%d", f1.NumEdges())
		}
	})
}

// TestFreezeConcurrent races many first-time Freeze calls; all must
// observe one coherent view (run with -race).
func TestFreezeConcurrent(t *testing.T) {
	g := randomFrozenGraph(t, 2, 100, 500)
	var wg sync.WaitGroup
	results := make([]*Frozen, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = g.Freeze()
		}(i)
	}
	wg.Wait()
	for _, f := range results {
		if f.NumEdges() != g.NumEdges() {
			t.Fatal("incoherent frozen view")
		}
	}
}

// TestSchemaDeclareProperty covers the declaration API: kinds resolve
// for vertex and edge type names, unknown types error, and Extend (the
// view-schema derivation) carries declarations over.
func TestSchemaDeclareProperty(t *testing.T) {
	s := MustSchema([]string{"Job", "File"}, []EdgeType{
		{From: "Job", To: "File", Name: "WRITES_TO"},
	})
	if err := s.DeclareProperty("Job", "CPU", PropInt); err != nil {
		t.Fatal(err)
	}
	if err := s.DeclareProperty("WRITES_TO", "ts", PropInt); err != nil {
		t.Fatalf("edge type name declaration: %v", err)
	}
	if err := s.DeclareProperty("Nope", "x", PropInt); err == nil {
		t.Error("unknown type accepted")
	}
	if err := s.DeclareProperty("Job", "", PropInt); err == nil {
		t.Error("empty property accepted")
	}
	if err := s.DeclareProperty("Job", "x", PropKind(99)); err == nil {
		t.Error("invalid kind accepted")
	}
	if k, ok := s.PropertyKind("Job", "CPU"); !ok || k != PropInt {
		t.Errorf("PropertyKind(Job, CPU) = %v/%v", k, ok)
	}
	if _, ok := s.PropertyKind("Job", "mem"); ok {
		t.Error("undeclared property resolved")
	}
	ext, err := s.Extend([]string{"Task"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k, ok := ext.PropertyKind("Job", "CPU"); !ok || k != PropInt {
		t.Error("Extend dropped property declarations")
	}
	// AdoptProperties keeps only declarations whose type survives.
	narrow := MustSchema([]string{"Job"}, nil)
	narrow.AdoptProperties(s)
	if k, ok := narrow.PropertyKind("Job", "CPU"); !ok || k != PropInt {
		t.Error("AdoptProperties dropped surviving declaration")
	}
	if _, ok := narrow.PropertyKind("WRITES_TO", "ts"); ok {
		t.Error("AdoptProperties kept declaration for absent type")
	}
}
