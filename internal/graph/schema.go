package graph

import (
	"fmt"
	"sort"
	"strings"
)

// EdgeType declares a directed edge type with its domain (From) and range
// (To) vertex types, e.g. Job-[WRITES_TO]->File. These are the explicit
// schema constraints Kaskade mines (§IV-A): an edge of type "WRITES_TO"
// only ever connects a Job to a File.
type EdgeType struct {
	From string // domain vertex type
	To   string // range vertex type
	Name string // edge label
}

// PropKind is a schema-declared property value type. Declarations are
// optional metadata layered on the otherwise-untyped property bags; the
// executor's plan-time analysis trusts them (e.g. a PropInt declaration
// licenses the partial-aggregation path for SUM over that property).
type PropKind int

// Declarable property kinds, mirroring the query language's value types.
const (
	PropInt PropKind = iota + 1
	PropFloat
	PropString
	PropBool
)

// String names the kind for display.
func (k PropKind) String() string {
	switch k {
	case PropInt:
		return "int"
	case PropFloat:
		return "float"
	case PropString:
		return "string"
	case PropBool:
		return "bool"
	}
	return "unknown"
}

// propKey identifies one declared property: the owning vertex type (or
// edge type name) and the property name.
type propKey struct{ typeName, prop string }

// Schema is a property-graph schema: the set of vertex types and the set
// of typed, direction-constrained edge types between them. It is the
// source of the schemaVertex/schemaEdge facts of §IV-A1. Optionally it
// also declares property value types (DeclareProperty), which the
// executor consults at plan time.
type Schema struct {
	vertexTypes map[string]bool
	edgeTypes   []EdgeType
	// allowed indexes (from,to,name) triples for O(1) AddEdge validation.
	allowed map[EdgeType]bool
	// props holds declared property kinds per vertex type or edge type
	// name. Declarations happen at setup, before concurrent use.
	props map[propKey]PropKind
}

// NewSchema builds a schema from vertex type names and edge type
// declarations. It returns an error if an edge type references an
// undeclared vertex type or is declared twice.
func NewSchema(vertexTypes []string, edgeTypes []EdgeType) (*Schema, error) {
	s := &Schema{
		vertexTypes: make(map[string]bool, len(vertexTypes)),
		allowed:     make(map[EdgeType]bool, len(edgeTypes)),
	}
	for _, vt := range vertexTypes {
		if vt == "" {
			return nil, fmt.Errorf("schema: empty vertex type name")
		}
		s.vertexTypes[vt] = true
	}
	for _, et := range edgeTypes {
		if !s.vertexTypes[et.From] {
			return nil, fmt.Errorf("schema: edge %s: unknown domain type %q", et.Name, et.From)
		}
		if !s.vertexTypes[et.To] {
			return nil, fmt.Errorf("schema: edge %s: unknown range type %q", et.Name, et.To)
		}
		if s.allowed[et] {
			return nil, fmt.Errorf("schema: duplicate edge type %s-[%s]->%s", et.From, et.Name, et.To)
		}
		s.allowed[et] = true
		s.edgeTypes = append(s.edgeTypes, et)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for static schemas.
func MustSchema(vertexTypes []string, edgeTypes []EdgeType) *Schema {
	s, err := NewSchema(vertexTypes, edgeTypes)
	if err != nil {
		panic(err)
	}
	return s
}

// HasVertexType reports whether the schema declares the vertex type.
func (s *Schema) HasVertexType(vtype string) bool { return s.vertexTypes[vtype] }

// DeclareProperty declares the value type of property `prop` on the
// given vertex type (or edge type name). The declaration is trusted
// metadata: the executor uses it to prove, at plan time, that an
// expression like SUM(j.CPU) folds in integers and may therefore run on
// the parallel partial-aggregation path. Declare properties during
// setup, before the schema is shared across goroutines. It returns an
// error when the type name is neither a declared vertex type nor an
// edge type name, or when kind is invalid.
func (s *Schema) DeclareProperty(typeName, prop string, kind PropKind) error {
	if kind < PropInt || kind > PropBool {
		return fmt.Errorf("schema: invalid property kind %d", kind)
	}
	if prop == "" {
		return fmt.Errorf("schema: empty property name")
	}
	if !s.vertexTypes[typeName] && !s.hasEdgeTypeName(typeName) {
		return fmt.Errorf("schema: DeclareProperty: unknown type %q", typeName)
	}
	if s.props == nil {
		s.props = make(map[propKey]PropKind)
	}
	s.props[propKey{typeName, prop}] = kind
	return nil
}

// PropertyKind returns the declared kind of a property on a vertex type
// (or edge type name), reporting false when undeclared.
func (s *Schema) PropertyKind(typeName, prop string) (PropKind, bool) {
	k, ok := s.props[propKey{typeName, prop}]
	return k, ok
}

// PropertyDecls returns every property declaration, sorted by
// (type, prop) — the deterministic order freeze-time column builds and
// the save format iterate in.
func (s *Schema) PropertyDecls() []PropDecl {
	if len(s.props) == 0 {
		return nil
	}
	out := make([]PropDecl, 0, len(s.props))
	for k, v := range s.props {
		out = append(out, PropDecl{Type: k.typeName, Prop: k.prop, Kind: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].Prop < out[j].Prop
	})
	return out
}

// CheckValue validates a property value against its declaration,
// returning nil when the property is undeclared, v is nil (absent), or
// v's dynamic type matches the declared kind. graph.Load funnels every
// loaded property through this so a dataset file can't smuggle an
// untyped value into a declared column.
func (s *Schema) CheckValue(typeName, prop string, v any) error {
	if v == nil {
		return nil
	}
	k, ok := s.props[propKey{typeName, prop}]
	if !ok {
		return nil
	}
	return checkPropValue(typeName, prop, k, v)
}

// AdoptProperties copies every property declaration from `from` whose
// owning type s also declares (as a vertex type or edge type name) —
// used when deriving a view graph's schema, so queries rewritten over
// the view keep the base types' property typing. A nil `from` is a
// no-op.
func (s *Schema) AdoptProperties(from *Schema) {
	if from == nil {
		return
	}
	for k, v := range from.props {
		if !s.vertexTypes[k.typeName] && !s.hasEdgeTypeName(k.typeName) {
			continue
		}
		if s.props == nil {
			s.props = make(map[propKey]PropKind)
		}
		s.props[k] = v
	}
}

func (s *Schema) hasEdgeTypeName(name string) bool {
	for _, et := range s.edgeTypes {
		if et.Name == name {
			return true
		}
	}
	return false
}

// AllowsEdge reports whether an edge of type name may connect a vertex of
// type from to a vertex of type to.
func (s *Schema) AllowsEdge(from, to, name string) bool {
	return s.allowed[EdgeType{From: from, To: to, Name: name}]
}

// VertexTypes returns the declared vertex types, sorted.
func (s *Schema) VertexTypes() []string {
	types := make([]string, 0, len(s.vertexTypes))
	for t := range s.vertexTypes {
		types = append(types, t)
	}
	sort.Strings(types)
	return types
}

// EdgeTypes returns the declared edge types in declaration order.
func (s *Schema) EdgeTypes() []EdgeType {
	return append([]EdgeType(nil), s.edgeTypes...)
}

// EdgeTypesFrom returns the edge types whose domain is the given vertex
// type, in declaration order.
func (s *Schema) EdgeTypesFrom(vtype string) []EdgeType {
	var out []EdgeType
	for _, et := range s.edgeTypes {
		if et.From == vtype {
			out = append(out, et)
		}
	}
	return out
}

// SourceTypes returns the vertex types that are the domain of at least one
// edge type (the T_G of the heterogeneous size estimator, Eq. 3), sorted.
func (s *Schema) SourceTypes() []string {
	seen := make(map[string]bool)
	for _, et := range s.edgeTypes {
		seen[et.From] = true
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Extend returns a copy of the schema with the extra vertex and edge types
// added (ignoring exact duplicates). Materializing a connector view adds
// its contracted edge type to the view graph's schema this way.
func (s *Schema) Extend(vertexTypes []string, edgeTypes []EdgeType) (*Schema, error) {
	vts := s.VertexTypes()
	for _, vt := range vertexTypes {
		if !s.vertexTypes[vt] {
			vts = append(vts, vt)
		}
	}
	ets := s.EdgeTypes()
	for _, et := range edgeTypes {
		if !s.allowed[et] {
			ets = append(ets, et)
		}
	}
	ext, err := NewSchema(vts, ets)
	if err != nil {
		return nil, err
	}
	// Property declarations carry over to derived schemas (a view graph
	// keeps the base types' property typing).
	if len(s.props) > 0 {
		ext.props = make(map[propKey]PropKind, len(s.props))
		for k, v := range s.props {
			ext.props[k] = v
		}
	}
	return ext, nil
}

// String renders the schema compactly, e.g. for the CLI's schema command.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString("vertices: ")
	b.WriteString(strings.Join(s.VertexTypes(), ", "))
	b.WriteString("\nedges:\n")
	for _, et := range s.edgeTypes {
		fmt.Fprintf(&b, "  %s-[%s]->%s\n", et.From, et.Name, et.To)
	}
	return b.String()
}

// IsHomogeneous reports whether the schema has exactly one vertex type
// (the paper's homogeneous/heterogeneous distinction, §I fn. 1).
func (s *Schema) IsHomogeneous() bool { return len(s.vertexTypes) == 1 }
