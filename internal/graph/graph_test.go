package graph

import (
	"testing"
	"testing/quick"
)

func lineageSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		[]string{"Job", "File"},
		[]EdgeType{
			{From: "Job", To: "File", Name: "WRITES_TO"},
			{From: "File", To: "Job", Name: "IS_READ_BY"},
		},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestAddVertexAssignsDenseIDs(t *testing.T) {
	g := NewGraph(lineageSchema(t))
	for i := 0; i < 5; i++ {
		id, err := g.AddVertex("Job", nil)
		if err != nil {
			t.Fatalf("AddVertex: %v", err)
		}
		if id != VertexID(i) {
			t.Errorf("vertex %d got ID %d", i, id)
		}
	}
	if g.NumVertices() != 5 {
		t.Errorf("NumVertices = %d, want 5", g.NumVertices())
	}
}

func TestAddVertexRejectsUnknownType(t *testing.T) {
	g := NewGraph(lineageSchema(t))
	if _, err := g.AddVertex("Task", nil); err == nil {
		t.Fatal("AddVertex with undeclared type: want error, got nil")
	}
}

func TestAddEdgeEnforcesSchema(t *testing.T) {
	g := NewGraph(lineageSchema(t))
	j := g.MustAddVertex("Job", nil)
	f := g.MustAddVertex("File", nil)

	if _, err := g.AddEdge(j, f, "WRITES_TO", nil); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
	// Wrong direction.
	if _, err := g.AddEdge(f, j, "WRITES_TO", nil); err == nil {
		t.Error("File-[WRITES_TO]->Job accepted; schema should forbid it")
	}
	// File-File edges do not exist in a lineage schema.
	f2 := g.MustAddVertex("File", nil)
	if _, err := g.AddEdge(f, f2, "IS_READ_BY", nil); err == nil {
		t.Error("File-[IS_READ_BY]->File accepted; schema should forbid it")
	}
}

func TestAddEdgeRejectsInvalidEndpoints(t *testing.T) {
	g := NewGraph(nil)
	v := g.MustAddVertex("A", nil)
	if _, err := g.AddEdge(v, 99, "E", nil); err == nil {
		t.Error("edge to nonexistent vertex accepted")
	}
	if _, err := g.AddEdge(-1, v, "E", nil); err == nil {
		t.Error("edge from negative vertex accepted")
	}
}

func TestAdjacency(t *testing.T) {
	g := NewGraph(nil)
	a := g.MustAddVertex("A", nil)
	b := g.MustAddVertex("B", nil)
	c := g.MustAddVertex("C", nil)
	e1 := g.MustAddEdge(a, b, "E", nil)
	e2 := g.MustAddEdge(a, c, "E", nil)
	e3 := g.MustAddEdge(b, c, "E", nil)

	if got := g.Out(a); len(got) != 2 || got[0] != e1 || got[1] != e2 {
		t.Errorf("Out(a) = %v, want [%d %d]", got, e1, e2)
	}
	if got := g.In(c); len(got) != 2 || got[0] != e2 || got[1] != e3 {
		t.Errorf("In(c) = %v, want [%d %d]", got, e2, e3)
	}
	if g.OutDegree(a) != 2 || g.InDegree(a) != 0 {
		t.Errorf("degrees of a = (%d,%d), want (2,0)", g.OutDegree(a), g.InDegree(a))
	}
	if g.Edge(e3).From != b || g.Edge(e3).To != c {
		t.Errorf("Edge(e3) endpoints = (%d,%d), want (%d,%d)", g.Edge(e3).From, g.Edge(e3).To, b, c)
	}
}

func TestVerticesOfType(t *testing.T) {
	g := NewGraph(lineageSchema(t))
	j1 := g.MustAddVertex("Job", nil)
	g.MustAddVertex("File", nil)
	j2 := g.MustAddVertex("Job", nil)

	jobs := g.VerticesOfType("Job")
	if len(jobs) != 2 || jobs[0] != j1 || jobs[1] != j2 {
		t.Errorf("VerticesOfType(Job) = %v, want [%d %d]", jobs, j1, j2)
	}
	if n := g.CountVerticesOfType("File"); n != 1 {
		t.Errorf("CountVerticesOfType(File) = %d, want 1", n)
	}
	if got := g.VerticesOfType("Task"); got != nil {
		t.Errorf("VerticesOfType(Task) = %v, want nil", got)
	}
}

func TestVertexTypesSorted(t *testing.T) {
	g := NewGraph(nil)
	g.MustAddVertex("Zebra", nil)
	g.MustAddVertex("Ant", nil)
	g.MustAddVertex("Moth", nil)
	got := g.VertexTypes()
	want := []string{"Ant", "Moth", "Zebra"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("VertexTypes = %v, want %v", got, want)
		}
	}
}

func TestProperties(t *testing.T) {
	g := NewGraph(nil)
	v := g.MustAddVertex("Job", Properties{"cpu": int64(42)})
	if got := g.Vertex(v).Prop("cpu"); got != int64(42) {
		t.Errorf("Prop(cpu) = %v, want 42", got)
	}
	if got := g.Vertex(v).Prop("missing"); got != nil {
		t.Errorf("Prop(missing) = %v, want nil", got)
	}
	g.Vertex(v).SetProp("community", int64(7))
	if got := g.Vertex(v).Prop("community"); got != int64(7) {
		t.Errorf("SetProp/Prop = %v, want 7", got)
	}
	// SetProp on a vertex created without a bag allocates lazily.
	u := g.MustAddVertex("File", nil)
	g.Vertex(u).SetProp("size", int64(1))
	if got := g.Vertex(u).Prop("size"); got != int64(1) {
		t.Errorf("lazy SetProp = %v, want 1", got)
	}
}

func TestEdgeTypeCounts(t *testing.T) {
	g := NewGraph(nil)
	a := g.MustAddVertex("A", nil)
	b := g.MustAddVertex("B", nil)
	g.MustAddEdge(a, b, "X", nil)
	g.MustAddEdge(a, b, "X", nil)
	g.MustAddEdge(b, a, "Y", nil)
	counts := g.EdgeTypeCounts()
	if counts["X"] != 2 || counts["Y"] != 1 {
		t.Errorf("EdgeTypeCounts = %v, want X:2 Y:1", counts)
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema([]string{"A"}, []EdgeType{{From: "A", To: "B", Name: "E"}}); err == nil {
		t.Error("edge to undeclared vertex type accepted")
	}
	if _, err := NewSchema([]string{""}, nil); err == nil {
		t.Error("empty vertex type name accepted")
	}
	dup := EdgeType{From: "A", To: "A", Name: "E"}
	if _, err := NewSchema([]string{"A"}, []EdgeType{dup, dup}); err == nil {
		t.Error("duplicate edge type accepted")
	}
}

func TestSchemaQueries(t *testing.T) {
	s := MustSchema(
		[]string{"Job", "File", "Task"},
		[]EdgeType{
			{From: "Job", To: "File", Name: "WRITES_TO"},
			{From: "File", To: "Job", Name: "IS_READ_BY"},
			{From: "Job", To: "Task", Name: "SPAWNS"},
		},
	)
	if !s.AllowsEdge("Job", "File", "WRITES_TO") {
		t.Error("AllowsEdge(Job,File,WRITES_TO) = false")
	}
	if s.AllowsEdge("File", "File", "WRITES_TO") {
		t.Error("AllowsEdge(File,File,WRITES_TO) = true")
	}
	from := s.EdgeTypesFrom("Job")
	if len(from) != 2 {
		t.Errorf("EdgeTypesFrom(Job) has %d entries, want 2", len(from))
	}
	src := s.SourceTypes()
	if len(src) != 2 || src[0] != "File" || src[1] != "Job" {
		t.Errorf("SourceTypes = %v, want [File Job]", src)
	}
	if s.IsHomogeneous() {
		t.Error("IsHomogeneous = true for a 3-type schema")
	}
}

func TestSchemaExtend(t *testing.T) {
	s := MustSchema([]string{"Job", "File"}, []EdgeType{{From: "Job", To: "File", Name: "W"}})
	ext, err := s.Extend(nil, []EdgeType{{From: "Job", To: "Job", Name: "CONN_2_JOB_JOB"}})
	if err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if !ext.AllowsEdge("Job", "Job", "CONN_2_JOB_JOB") {
		t.Error("extended schema missing connector edge type")
	}
	if !ext.AllowsEdge("Job", "File", "W") {
		t.Error("extended schema lost original edge type")
	}
	// Original schema unchanged.
	if s.AllowsEdge("Job", "Job", "CONN_2_JOB_JOB") {
		t.Error("Extend mutated the receiver")
	}
}

// Property: after any sequence of vertex additions, per-type buckets
// partition the ID space exactly.
func TestVertexBucketsPartitionIDs(t *testing.T) {
	f := func(types []uint8) bool {
		g := NewGraph(nil)
		names := []string{"A", "B", "C", "D"}
		for _, b := range types {
			g.MustAddVertex(names[int(b)%len(names)], nil)
		}
		seen := make(map[VertexID]bool)
		total := 0
		for _, tname := range g.VertexTypes() {
			for _, id := range g.VerticesOfType(tname) {
				if seen[id] {
					return false
				}
				if g.Vertex(id).Type != tname {
					return false
				}
				seen[id] = true
				total++
			}
		}
		return total == g.NumVertices()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: for every edge e, e appears exactly once in Out(From) and once
// in In(To); sums of degrees equal edge count.
func TestAdjacencyConsistency(t *testing.T) {
	f := func(pairs []uint16) bool {
		g := NewGraph(nil)
		const n = 10
		for i := 0; i < n; i++ {
			g.MustAddVertex("V", nil)
		}
		for _, p := range pairs {
			from := VertexID(int(p>>8) % n)
			to := VertexID(int(p&0xff) % n)
			g.MustAddEdge(from, to, "E", nil)
		}
		outSum, inSum := 0, 0
		for v := VertexID(0); int(v) < n; v++ {
			outSum += g.OutDegree(v)
			inSum += g.InDegree(v)
			for _, eid := range g.Out(v) {
				if g.Edge(eid).From != v {
					return false
				}
			}
			for _, eid := range g.In(v) {
				if g.Edge(eid).To != v {
					return false
				}
			}
		}
		return outSum == g.NumEdges() && inSum == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
