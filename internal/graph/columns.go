package graph

import (
	"fmt"

	"kaskade/internal/bitset"
)

// Columnar property storage: at freeze time, every schema-declared
// (vertex type, property) pair (Schema.DeclareProperty) becomes a typed
// column indexed by the dense per-type vertex index that the frozen CSR
// already maintains. A property scan — Q1's CPU filters, aggregation
// inputs — then walks a flat []int64 / []float64 / interned-string /
// bitset array instead of chasing one map[string]any per vertex.
//
// Columns are validated as they are built: a value whose dynamic type
// contradicts its declaration (float64 under PropInt) fails the freeze
// loudly, so a lying declaration is caught at freeze time, not as a
// silent misread at scan time. Because every stored value is validated,
// a column read is byte-identical to the property-map read it replaces;
// the executor's noColumns switch pins that equivalence in tests.
//
// Alongside the typed arrays each column keeps the original boxed
// values (`vals`, sharing the property bags' interface words), so a
// generic evaluator read is two array indexes and zero allocations —
// boxing a large int64 on every read would otherwise cost an allocation
// the map path never paid. The typed arrays serve the vectorized
// predicate prefilter, which compares against []int64/[]float64 without
// unboxing at all.
//
// Columns cover vertex properties only. Edge property declarations stay
// plan-time metadata (and are checked by graph.Load); edge reads keep
// the map path. Mutating a declared property after a freeze
// (Vertex.SetProp) leaves the frozen columns stale, like any
// post-freeze mutation — the read-only-after-freeze contract already
// forbids it for graphs being queried.

// PropDecl is one property declaration: the owning vertex (or edge)
// type, the property name, and the declared kind.
type PropDecl struct {
	Type string   `json:"type"`
	Prop string   `json:"prop"`
	Kind PropKind `json:"kind"`
}

// column is one frozen (vertex type, property) column. Slots are the
// dense per-type vertex index (denseIx); exactly one typed backing
// array is populated, by kind.
type column struct {
	prop    string
	kind    PropKind
	present bitset.Set // slot -> value present
	vals    []any      // original boxed values (nil when absent)
	ints    []int64
	floats  []float64
	strIx   []int32  // slot -> index into dict
	dict    []string // interned distinct strings, first-appearance order
	bools   bitset.Set
}

// bytes returns the column's resident index size: the typed array, the
// presence bitset, the boxed-value array, and (for strings) the dict
// headers and bytes. The boxed values themselves are shared with the
// property bags and not double-counted.
func (c *column) bytes() int64 {
	n := int64(len(c.vals))
	b := n*16 + int64(len(c.present))*8
	switch c.kind {
	case PropInt:
		b += int64(len(c.ints)) * 8
	case PropFloat:
		b += int64(len(c.floats)) * 8
	case PropString:
		b += int64(len(c.strIx)) * 4
		for _, s := range c.dict {
			b += 16 + int64(len(s))
		}
	case PropBool:
		b += int64(len(c.bools)) * 8
	}
	return b
}

// checkPropValue validates one stored value against a declaration; the
// shared error shape for freeze-time column builds and graph.Load.
func checkPropValue(typeName, prop string, kind PropKind, v any) error {
	ok := false
	switch kind {
	case PropInt:
		_, ok = v.(int64)
	case PropFloat:
		_, ok = v.(float64)
	case PropString:
		_, ok = v.(string)
	case PropBool:
		_, ok = v.(bool)
	}
	if ok {
		return nil
	}
	return fmt.Errorf("graph: property %s.%s declared %s, holds %T (%v)", typeName, prop, kind, v, v)
}

// buildColumns populates f's typed property columns from g's schema
// declarations. It fails on the first value whose dynamic type
// contradicts its declaration.
func buildColumns(g *Graph, f *Frozen) error {
	s := g.schema
	if s == nil {
		return nil
	}
	decls := s.PropertyDecls()
	if len(decls) == 0 {
		return nil
	}
	for _, d := range decls {
		tid, ok := f.vtypeID[d.Type]
		if !ok {
			continue // edge-type declaration, or no vertices of the type
		}
		verts := f.verticesByType[tid]
		if f.denseIx == nil {
			f.denseIx = buildDenseIndex(f)
		}
		n := len(verts)
		col := column{
			prop:    d.Prop,
			kind:    d.Kind,
			present: bitset.New(n),
			vals:    make([]any, n),
		}
		switch d.Kind {
		case PropInt:
			col.ints = make([]int64, n)
		case PropFloat:
			col.floats = make([]float64, n)
		case PropString:
			col.strIx = make([]int32, n)
		case PropBool:
			col.bools = bitset.New(n)
		}
		intern := map[string]int32{}
		for i, vid := range verts {
			v := g.vertices[vid].Prop(d.Prop)
			if v == nil {
				continue
			}
			if err := checkPropValue(d.Type, d.Prop, d.Kind, v); err != nil {
				return fmt.Errorf("graph: freeze: vertex %d: %w", vid, err)
			}
			col.present.Add(i)
			col.vals[i] = v
			switch d.Kind {
			case PropInt:
				col.ints[i] = v.(int64)
			case PropFloat:
				col.floats[i] = v.(float64)
			case PropString:
				sv := v.(string)
				ix, ok := intern[sv]
				if !ok {
					ix = int32(len(col.dict))
					intern[sv] = ix
					col.dict = append(col.dict, sv)
				}
				col.strIx[i] = ix
			case PropBool:
				if v.(bool) {
					col.bools.Add(i)
				}
			}
		}
		if f.colsByVType == nil {
			f.colsByVType = make([][]column, len(f.vtypes))
		}
		f.colsByVType[tid] = append(f.colsByVType[tid], col)
		f.colCount++
		f.colBytes += col.bytes()
	}
	return nil
}

// buildDenseIndex computes vertex ID -> position within the vertex's
// per-type list, the slot index columns are addressed by.
func buildDenseIndex(f *Frozen) []int32 {
	ix := make([]int32, len(f.vtypeOf))
	for _, verts := range f.verticesByType {
		for i, vid := range verts {
			ix[vid] = int32(i)
		}
	}
	return ix
}

// findColumn resolves the column for (v's type, key) with a short
// linear scan — types carry a handful of declared properties, so a scan
// over the slice beats a map lookup.
func (f *Frozen) findColumn(v VertexID, key string) *column {
	if f.colsByVType == nil {
		return nil
	}
	cols := f.colsByVType[f.vtypeOf[v]]
	for i := range cols {
		if cols[i].prop == key {
			return &cols[i]
		}
	}
	return nil
}

// VertexPropColumnar returns v's value of a declared property from its
// frozen column. covered reports whether a column exists for
// (v's type, key); when it does, the value (nil when absent on v) is
// byte-identical to Vertex(v).Prop(key) — freeze-time validation
// guarantees it — and reading it allocates nothing. covered=false means
// the caller must fall back to the property map. Tail vertices resolve
// through their type's tail column extension (delta.go), validated at
// mutation time with the same check the freeze applies.
func (f *Frozen) VertexPropColumnar(v VertexID, key string) (val any, covered bool) {
	if ov := f.ov; ov != nil && int(v) >= ov.baseNV {
		ti := int(v) - ov.baseNV
		slot := ov.tailSlot[ti]
		if slot < 0 {
			return nil, false
		}
		tid := ov.vtypeOf[ti]
		cols := f.colsByVType[tid]
		for i := range cols {
			if cols[i].prop == key {
				overlayReads.Add(1)
				return ov.cols[tid][i].vals[slot], true
			}
		}
		return nil, false
	}
	c := f.findColumn(v, key)
	if c == nil {
		return nil, false
	}
	return c.vals[f.denseIx[v]], true
}

// ColumnStats reports the frozen property columns: how many were built
// and their resident index bytes (tail column extensions included).
func (f *Frozen) ColumnStats() (count int, bytes int64) {
	bytes = f.colBytes
	if f.ov != nil {
		bytes += f.ov.colBytes
	}
	return f.colCount, bytes
}

// PropColumn is a read-only handle to one frozen typed column, for
// callers (the executor's vectorized predicate prefilter) that scan a
// candidate list against one property. The typed accessors must only be
// passed vertices of the column's vertex type — the column is indexed
// by the type's dense vertex index, with delta-tail vertices resolved
// through the column's tail extension (delta.go).
type PropColumn struct {
	f   *Frozen
	c   *column
	ov  *overlay // the snapshot's overlay (nil on a pure-base snapshot)
	tid int32    // the column's vertex-type ID
	ci  int      // the column's index within colsByVType[tid]
}

// Column resolves the frozen column for (vtype, prop), reporting false
// when none was built (undeclared, or no vertices of the type).
func (f *Frozen) Column(vtype, prop string) (PropColumn, bool) {
	tid, ok := f.vtypeID[vtype]
	if !ok || f.colsByVType == nil {
		return PropColumn{}, false
	}
	cols := f.colsByVType[tid]
	for i := range cols {
		if cols[i].prop == prop {
			return PropColumn{f: f, c: &cols[i], ov: f.ov, tid: tid, ci: i}, true
		}
	}
	return PropColumn{}, false
}

// Kind returns the column's declared kind.
func (pc PropColumn) Kind() PropKind { return pc.c.kind }

// tail reports whether v lives in the snapshot's delta tail and, when
// it does, resolves v's slot in this column's tail extension. tc == nil
// with tail == true means the tail holds no value for v.
func (pc PropColumn) tail(v VertexID) (tc *tailColumn, slot int32, tail bool) {
	ov := pc.ov
	if ov == nil || int(v) < ov.baseNV {
		return nil, 0, false
	}
	overlayReads.Add(1)
	slot = ov.tailSlot[int(v)-ov.baseNV]
	if slot < 0 {
		return nil, 0, true
	}
	tcs := ov.cols[pc.tid]
	if tcs == nil {
		return nil, 0, true
	}
	return &tcs[pc.ci], slot, true
}

// Int returns v's value from a PropInt column (present=false when the
// vertex lacks the property).
func (pc PropColumn) Int(v VertexID) (int64, bool) {
	if tc, slot, tail := pc.tail(v); tail {
		if tc == nil || tc.vals[slot] == nil {
			return 0, false
		}
		return tc.ints[slot], true
	}
	i := pc.f.denseIx[v]
	if !pc.c.present.Has(int(i)) {
		return 0, false
	}
	return pc.c.ints[i], true
}

// Float returns v's value from a PropFloat column.
func (pc PropColumn) Float(v VertexID) (float64, bool) {
	if tc, slot, tail := pc.tail(v); tail {
		if tc == nil || tc.vals[slot] == nil {
			return 0, false
		}
		return tc.floats[slot], true
	}
	i := pc.f.denseIx[v]
	if !pc.c.present.Has(int(i)) {
		return 0, false
	}
	return pc.c.floats[i], true
}

// Str returns v's value from a PropString column (base values are
// interned and shared; tail values are stored directly).
func (pc PropColumn) Str(v VertexID) (string, bool) {
	if tc, slot, tail := pc.tail(v); tail {
		if tc == nil || tc.vals[slot] == nil {
			return "", false
		}
		return tc.strs[slot], true
	}
	i := pc.f.denseIx[v]
	if !pc.c.present.Has(int(i)) {
		return "", false
	}
	return pc.c.dict[pc.c.strIx[i]], true
}

// Bool returns v's value from a PropBool column.
func (pc PropColumn) Bool(v VertexID) (bool, bool) {
	if tc, slot, tail := pc.tail(v); tail {
		if tc == nil || tc.vals[slot] == nil {
			return false, false
		}
		return tc.bools[slot], true
	}
	i := pc.f.denseIx[v]
	if !pc.c.present.Has(int(i)) {
		return false, false
	}
	return pc.c.bools.Has(int(i)), true
}
