package graph

import (
	"sort"
	"sync/atomic"
)

// csrBuilds counts CSR index constructions process-wide — the freeze
// events the metrics snapshot reports. Freeze memoizes, so this counts
// distinct builds (base graph loads, views landing in a catalog,
// post-mutation re-freezes), not Freeze calls; concurrent first-freeze
// races may build twice and count both, which is honest — both builds
// paid their O(V+E).
var csrBuilds atomic.Int64

// CSRBuilds returns the process-wide count of frozen CSR index builds.
func CSRBuilds() int64 { return csrBuilds.Load() }

// Frozen is an immutable, cache-friendly view of a Graph: adjacency is
// laid out in flat CSR (compressed sparse row) arrays instead of the
// loader's pointer-heavy per-vertex slices, edge endpoints and type
// labels are interned into dense parallel arrays, and every vertex's
// out- and in-edges are additionally grouped by edge type so a typed
// traversal step reads one contiguous slice with no per-edge filtering.
//
// A Frozen is derived from its Graph by Freeze and shares the graph's
// vertex/edge records and property bags read-only; it adds only index
// structure. All iteration orders are preserved exactly: Out/In return
// edges in insertion order, OutOfType/InOfType return the insertion-
// order subsequence of that type, and VerticesOfType matches
// Graph.VerticesOfType — so an algorithm ported from the append-mode
// accessors to the frozen ones produces byte-identical results.
//
// Freeze memoizes: the first call builds the index in O(V+E) and caches
// it on the graph; later calls return the cached value (one atomic
// load). Mutating the graph (AddVertex/AddEdge) after a freeze attaches
// a delta overlay to the cached view (delta.go): the tail merges behind
// every accessor here, so the snapshot tracks the live graph without a
// rebuild, and compaction periodically folds the tail into a fresh base
// CSR. With the overlay disabled (Graph.SetDeltaOverlay(false)),
// mutation invalidates the cache instead. A graph still being loaded
// may be frozen early at no correctness cost — but the intended
// lifecycle is freeze-after-load: the loader (graph.Load), the catalog
// (each landed view), and the executor all freeze once and then mostly
// read.
type Frozen struct {
	g *Graph

	// Interned type labels, in first-appearance (vertex/edge ID) order.
	vtypes  []string
	vtypeID map[string]int32
	etypes  []string
	etypeID map[string]int32

	vtypeOf []int32 // vertex ID -> index into vtypes
	etypeOf []int32 // edge ID -> index into etypes

	// Flat edge endpoints (edge ID -> vertex ID), so traversals never
	// touch the Edge struct (and its property-map pointer) just to step.
	edgeFrom []VertexID
	edgeTo   []VertexID

	// CSR adjacency in insertion order: vertex v's out-edges are
	// outEdges[outOff[v]:outOff[v+1]], matching Graph.Out(v) exactly.
	outOff   []int32
	outEdges []EdgeID
	inOff    []int32
	inEdges  []EdgeID

	// Type-grouped adjacency: outTyped holds each vertex's row permuted
	// so edges of one type are contiguous (insertion order within a
	// group), occupying the same [outOff[v], outOff[v+1]) span as the
	// flat row. The groups present at v are outGroups[outGroupOff[v]:
	// outGroupOff[v+1]] — one (type, start) record per distinct type in
	// the row, so memory is O(V+E) regardless of how many edge types the
	// graph declares. OutOfType resolves a group with a short linear
	// scan (vertices rarely carry more than a handful of types).
	outGroupOff []int32
	outGroups   []typeGroup
	outTyped    []EdgeID
	inGroupOff  []int32
	inGroups    []typeGroup
	inTyped     []EdgeID

	// Dense per-type vertex index, aligned with vtypes; the slices are
	// shared with (and ordered like) Graph.VerticesOfType.
	verticesByType [][]VertexID

	// Columnar property storage (columns.go): denseIx maps a vertex ID
	// to its position within its type's verticesByType list; colsByVType
	// holds the typed columns built for each vertex type's declared
	// properties. Both are nil when the schema declares no properties.
	denseIx     []int32
	colsByVType [][]column
	colCount    int
	colBytes    int64

	// ov is the delta overlay (delta.go), attached by the first
	// post-freeze mutation; nil on a pure-base snapshot. Written only on
	// the mutation path, which never overlaps readers.
	ov *overlay
}

// Freeze returns the graph's frozen CSR view, building and caching it on
// first use. Concurrent callers may race the first build (both build,
// one result wins — they are identical); mutation must not overlap
// Freeze, per the read-only-after-load contract.
//
// Freeze panics when a schema-declared property holds a value of the
// wrong dynamic type — a lying declaration is a programming or data
// error, and failing the freeze loudly beats a silent misread at scan
// time. Loaders validating untrusted data should use FreezeChecked
// (graph.Load does, per record, before ever freezing).
func (g *Graph) Freeze() *Frozen {
	f, err := g.FreezeChecked()
	if err != nil {
		panic(err)
	}
	return f
}

// FreezeChecked is Freeze with the declared-kind violations returned as
// an error instead of a panic.
func (g *Graph) FreezeChecked() (*Frozen, error) {
	if f := g.frozen.Load(); f != nil {
		return f, nil
	}
	f, err := buildFrozen(g)
	if err != nil {
		return nil, err
	}
	if !g.frozen.CompareAndSwap(nil, f) {
		return g.frozen.Load(), nil
	}
	return f, nil
}

// CachedFrozen returns the memoized frozen view if one has been built,
// without building one. Read paths that are only opportunistically
// columnar (the evaluator's property reads) use this so they never pay
// an O(V+E) freeze mid-expression — and so an executor configured to
// avoid Freeze entirely stays off the frozen structures.
func (g *Graph) CachedFrozen() *Frozen { return g.frozen.Load() }

func buildFrozen(g *Graph) (*Frozen, error) {
	csrBuilds.Add(1)
	nv, ne := len(g.vertices), len(g.edges)
	f := &Frozen{
		g:       g,
		vtypeID: make(map[string]int32),
		etypeID: make(map[string]int32),
		vtypeOf: make([]int32, nv),
		etypeOf: make([]int32, ne),
	}
	for i := range g.vertices {
		t := g.vertices[i].Type
		id, ok := f.vtypeID[t]
		if !ok {
			id = int32(len(f.vtypes))
			f.vtypeID[t] = id
			f.vtypes = append(f.vtypes, t)
		}
		f.vtypeOf[i] = id
	}
	f.edgeFrom = make([]VertexID, ne)
	f.edgeTo = make([]VertexID, ne)
	for i := range g.edges {
		e := &g.edges[i]
		t := e.Type
		id, ok := f.etypeID[t]
		if !ok {
			id = int32(len(f.etypes))
			f.etypeID[t] = id
			f.etypes = append(f.etypes, t)
		}
		f.etypeOf[i] = id
		f.edgeFrom[i] = e.From
		f.edgeTo[i] = e.To
	}
	f.outOff, f.outEdges = flattenAdjacency(g.out, ne)
	f.inOff, f.inEdges = flattenAdjacency(g.in, ne)
	nt := len(f.etypes)
	f.outGroupOff, f.outGroups, f.outTyped = groupByType(f.outOff, f.outEdges, f.etypeOf, nv, nt)
	f.inGroupOff, f.inGroups, f.inTyped = groupByType(f.inOff, f.inEdges, f.etypeOf, nv, nt)
	f.verticesByType = make([][]VertexID, len(f.vtypes))
	for i, t := range f.vtypes {
		f.verticesByType[i] = g.byType[t]
	}
	if err := buildColumns(g, f); err != nil {
		return nil, err
	}
	return f, nil
}

// flattenAdjacency packs per-vertex edge lists into one offset array and
// one edge array, preserving per-vertex order.
func flattenAdjacency(adj [][]EdgeID, ne int) ([]int32, []EdgeID) {
	off := make([]int32, len(adj)+1)
	edges := make([]EdgeID, 0, ne)
	for v, row := range adj {
		edges = append(edges, row...)
		off[v+1] = int32(len(edges))
	}
	return off, edges
}

// typeGroup records one contiguous same-type run in the type-grouped
// edge array: the interned type and the run's start offset. The run
// ends where the vertex's next group starts (or at the row end).
type typeGroup struct {
	t  int32
	lo int32
}

// groupByType builds the (vertex, edge type)-grouped copy of a CSR row
// set: a per-row counting sort that keeps insertion order within each
// type group (the typed traversal determinism rests on it), emitting
// one typeGroup per distinct type present in the row — sparse, so the
// index stays O(V+E) no matter how many edge types the graph declares.
func groupByType(off []int32, edges []EdgeID, etypeOf []int32, nv, nt int) ([]int32, []typeGroup, []EdgeID) {
	groupOff := make([]int32, nv+1)
	var groups []typeGroup
	grouped := make([]EdgeID, len(edges))
	// Per-type scratch, reused across rows and cleared via the touched
	// list (rows touch few types, so clearing is O(row), not O(nt)).
	count := make([]int32, nt)
	cursor := make([]int32, nt)
	var touched []int32
	for v := 0; v < nv; v++ {
		row := edges[off[v]:off[v+1]]
		for _, eid := range row {
			t := etypeOf[eid]
			if count[t] == 0 {
				touched = append(touched, t)
			}
			count[t]++
		}
		// Groups in first-appearance order; their runs tile the row's
		// span [off[v], off[v+1]) of the grouped array.
		at := off[v]
		for _, t := range touched {
			groups = append(groups, typeGroup{t: t, lo: at})
			cursor[t] = at
			at += count[t]
			count[t] = 0
		}
		for _, eid := range row {
			t := etypeOf[eid]
			grouped[cursor[t]] = eid
			cursor[t]++
		}
		touched = touched[:0]
		groupOff[v+1] = int32(len(groups))
	}
	return groupOff, groups, grouped
}

// Graph returns the underlying graph (for property and record access).
func (f *Frozen) Graph() *Graph { return f.g }

// NumVertices returns the vertex count (base + tail).
func (f *Frozen) NumVertices() int {
	if f.ov != nil {
		return len(f.g.vertices)
	}
	return len(f.vtypeOf)
}

// NumEdges returns the edge count (base + tail).
func (f *Frozen) NumEdges() int {
	if f.ov != nil {
		return len(f.g.edges)
	}
	return len(f.etypeOf)
}

// Vertex returns the vertex record (read-only), like Graph.Vertex.
func (f *Frozen) Vertex(id VertexID) *Vertex { return f.g.Vertex(id) }

// Edge returns the edge record (read-only), like Graph.Edge.
func (f *Frozen) Edge(id EdgeID) *Edge { return f.g.Edge(id) }

// Out returns the IDs of edges leaving v, in insertion order — the same
// sequence as Graph.Out(v), read from the flat CSR row. With an overlay,
// a vertex whose row gained tail edges (or that is itself in the tail)
// reads the graph's live insertion-order row, which IS the merged
// base+tail row; untouched vertices stay on the base CSR.
func (f *Frozen) Out(v VertexID) []EdgeID {
	if ov := f.ov; ov != nil {
		row := f.g.out[v]
		if int(v) >= ov.baseNV || int(f.outOff[v+1]-f.outOff[v]) != len(row) {
			overlayReads.Add(1)
			return row
		}
	}
	return f.outEdges[f.outOff[v]:f.outOff[v+1]]
}

// In returns the IDs of edges entering v, in insertion order.
func (f *Frozen) In(v VertexID) []EdgeID {
	if ov := f.ov; ov != nil {
		row := f.g.in[v]
		if int(v) >= ov.baseNV || int(f.inOff[v+1]-f.inOff[v]) != len(row) {
			overlayReads.Add(1)
			return row
		}
	}
	return f.inEdges[f.inOff[v]:f.inOff[v+1]]
}

// OutDegree returns the out-degree of v.
func (f *Frozen) OutDegree(v VertexID) int {
	if f.ov != nil {
		return len(f.g.out[v])
	}
	return int(f.outOff[v+1] - f.outOff[v])
}

// InDegree returns the in-degree of v.
func (f *Frozen) InDegree(v VertexID) int {
	if f.ov != nil {
		return len(f.g.in[v])
	}
	return int(f.inOff[v+1] - f.inOff[v])
}

// From returns an edge's source vertex from the flat endpoint array.
func (f *Frozen) From(e EdgeID) VertexID {
	if ov := f.ov; ov != nil && int(e) >= ov.baseNE {
		overlayReads.Add(1)
		return ov.edgeFrom[int(e)-ov.baseNE]
	}
	return f.edgeFrom[e]
}

// To returns an edge's target vertex from the flat endpoint array.
func (f *Frozen) To(e EdgeID) VertexID {
	if ov := f.ov; ov != nil && int(e) >= ov.baseNE {
		overlayReads.Add(1)
		return ov.edgeTo[int(e)-ov.baseNE]
	}
	return f.edgeTo[e]
}

// EdgeTypeID resolves an edge type label to its dense interned ID,
// reporting false when no edge of that type exists.
func (f *Frozen) EdgeTypeID(etype string) (int32, bool) {
	if ov := f.ov; ov != nil {
		id, ok := ov.etypeID[etype]
		return id, ok
	}
	id, ok := f.etypeID[etype]
	return id, ok
}

// EdgeTypeOf returns an edge's type label (interned — comparing results
// of EdgeTypeIDOf is cheaper in hot loops).
func (f *Frozen) EdgeTypeOf(e EdgeID) string {
	if ov := f.ov; ov != nil && int(e) >= ov.baseNE {
		overlayReads.Add(1)
		return ov.etypes[ov.etypeOf[int(e)-ov.baseNE]]
	}
	return f.etypes[f.etypeOf[e]]
}

// EdgeTypeIDOf returns an edge's interned type ID.
func (f *Frozen) EdgeTypeIDOf(e EdgeID) int32 {
	if ov := f.ov; ov != nil && int(e) >= ov.baseNE {
		overlayReads.Add(1)
		return ov.etypeOf[int(e)-ov.baseNE]
	}
	return f.etypeOf[e]
}

// VertexTypeOf returns a vertex's type label without touching the
// vertex record.
func (f *Frozen) VertexTypeOf(v VertexID) string {
	if ov := f.ov; ov != nil && int(v) >= ov.baseNV {
		overlayReads.Add(1)
		return ov.vtypes[ov.vtypeOf[int(v)-ov.baseNV]]
	}
	return f.vtypes[f.vtypeOf[v]]
}

// OutOfType returns the out-edges of v with the given edge type as one
// contiguous slice — the insertion-order subsequence of Out(v) with
// that type, with no per-edge filtering. Unknown types return nil.
func (f *Frozen) OutOfType(v VertexID, etype string) []EdgeID {
	t, ok := f.EdgeTypeID(etype)
	if !ok {
		return nil
	}
	return f.OutTyped(v, t)
}

// InOfType is OutOfType for in-edges.
func (f *Frozen) InOfType(v VertexID, etype string) []EdgeID {
	t, ok := f.EdgeTypeID(etype)
	if !ok {
		return nil
	}
	return f.InTyped(v, t)
}

// OutTyped returns the out-edges of v with interned edge type t (from
// EdgeTypeID), contiguous and in insertion order. With an overlay, a
// (v, t) pair a tail edge touched resolves to its merged run; tail-only
// type IDs never match a base group, so untouched pairs fall through to
// the base index correctly.
func (f *Frozen) OutTyped(v VertexID, t int32) []EdgeID {
	if ov := f.ov; ov != nil {
		if run, ok := ov.outTyped[typedKey{v: v, t: t}]; ok {
			overlayReads.Add(1)
			return run
		}
		if int(v) >= ov.baseNV {
			return nil
		}
	}
	return typedRun(f.outGroupOff, f.outGroups, f.outOff, f.outTyped, v, t)
}

// InTyped is OutTyped for in-edges.
func (f *Frozen) InTyped(v VertexID, t int32) []EdgeID {
	if ov := f.ov; ov != nil {
		if run, ok := ov.inTyped[typedKey{v: v, t: t}]; ok {
			overlayReads.Add(1)
			return run
		}
		if int(v) >= ov.baseNV {
			return nil
		}
	}
	return typedRun(f.inGroupOff, f.inGroups, f.inOff, f.inTyped, v, t)
}

// typedRun resolves vertex v's type-t group: a linear scan over the few
// groups present at v, returning the contiguous run (nil when absent).
func typedRun(groupOff []int32, groups []typeGroup, off []int32, typed []EdgeID, v VertexID, t int32) []EdgeID {
	gs := groups[groupOff[v]:groupOff[v+1]]
	for i, g := range gs {
		if g.t != t {
			continue
		}
		hi := off[v+1]
		if i+1 < len(gs) {
			hi = gs[i+1].lo
		}
		return typed[g.lo:hi]
	}
	return nil
}

// VerticesOfType returns the vertex IDs with the given type, in
// insertion order — the same (shared, read-only) slice as
// Graph.VerticesOfType. With an overlay, the graph's live per-type list
// is that merged slice already (base IDs precede all tail IDs).
func (f *Frozen) VerticesOfType(vtype string) []VertexID {
	if f.ov != nil {
		overlayReads.Add(1)
		return f.g.byType[vtype]
	}
	id, ok := f.vtypeID[vtype]
	if !ok {
		return nil
	}
	return f.verticesByType[id]
}

// EdgeTypes returns the distinct edge types present, sorted.
func (f *Frozen) EdgeTypes() []string {
	src := f.etypes
	if f.ov != nil {
		src = f.ov.etypes
	}
	out := append([]string(nil), src...)
	sort.Strings(out)
	return out
}
