// Package graph implements the in-memory property graph that Kaskade
// operates on. It is the substrate standing in for Neo4j in the paper:
// vertices and edges are typed, carry key-value properties, and obey an
// optional schema that constrains which edge types may connect which vertex
// types (the structural constraints that Kaskade's view enumeration mines).
//
// The graph is append-only: vertices and edges are added during loading or
// view materialization and never removed. Derived graphs (summarizer and
// connector views) are new Graph values. After loading, a Graph is safe for
// concurrent readers.
//
// # Frozen CSR views
//
// Freeze derives a Frozen view: flat CSR offset/edge arrays for out-
// and in-adjacency, interned type labels, per-vertex edges grouped by
// edge type (OutOfType returns a contiguous slice with no per-edge
// filtering), and a dense per-type vertex index. The frozen view shares
// the graph's records and property bags read-only, preserves every
// iteration order exactly, and is memoized on the graph — the loader,
// the view catalog, and the executor freeze once after load and then
// only read.
//
// Post-freeze mutations land in the snapshot's delta overlay (delta.go):
// AddVertex/AddEdge append to a per-type tail merged behind the Frozen
// accessors, and a compaction threshold folds the tail into a fresh
// base CSR — queries between mutations never pay an O(V+E) refreeze.
// SetDeltaOverlay(false) restores the legacy invalidate-on-mutate
// lifecycle. Either way, mutation must not run concurrently with
// readers, as ever.
package graph

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// VertexID identifies a vertex within one Graph. IDs are dense: the n-th
// added vertex has ID n-1, which lets adjacency be stored in flat slices.
type VertexID int32

// NoVertex is the zero-ish sentinel for "no vertex".
const NoVertex VertexID = -1

// EdgeID identifies an edge within one Graph, dense like VertexID.
type EdgeID int32

// Properties is a key-value property bag attached to a vertex or an edge.
// Values are restricted to the types the query language understands:
// int64, float64, string, and bool.
type Properties map[string]any

// Vertex is a typed vertex. Type is the label (e.g. "Job", "File").
type Vertex struct {
	ID    VertexID
	Type  string
	Props Properties
}

// Edge is a typed directed edge between two vertices.
type Edge struct {
	ID    EdgeID
	From  VertexID
	To    VertexID
	Type  string
	Props Properties
}

// Graph is an in-memory directed property graph.
//
// The zero value is an empty graph with no schema; NewGraph attaches a
// schema whose constraints are enforced on AddEdge.
type Graph struct {
	schema   *Schema
	vertices []Vertex
	edges    []Edge
	out      [][]EdgeID // out[v] = edges with From == v, in insertion order
	in       [][]EdgeID // in[v] = edges with To == v
	byType   map[string][]VertexID
	// frozen caches the CSR view built by Freeze. With the delta
	// overlay enabled (the default), post-freeze mutations land in the
	// cached view's tail and compaction swaps in a fresh build; with it
	// disabled (noDelta), any mutation clears the cache.
	frozen atomic.Pointer[Frozen]
	// noDelta disables the delta overlay (delta.go): mutations
	// invalidate the cached Frozen instead of landing in its tail. The
	// overlay equivalence suites pin overlay results against this
	// refreeze baseline.
	noDelta bool
	// compactAt overrides the tail-size compaction threshold (<= 0:
	// default, see compactionThreshold).
	compactAt int
	// compactions counts this graph's tail folds (see Compactions).
	compactions atomic.Uint64
}

// NewGraph returns an empty graph governed by schema. A nil schema means
// unconstrained (any vertex/edge types allowed).
func NewGraph(schema *Schema) *Graph {
	return &Graph{schema: schema, byType: make(map[string][]VertexID)}
}

// Schema returns the graph's schema, or nil when unconstrained.
func (g *Graph) Schema() *Schema { return g.schema }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddVertex adds a vertex of the given type with optional properties and
// returns its ID. It returns an error if the schema does not declare the
// vertex type.
func (g *Graph) AddVertex(vtype string, props Properties) (VertexID, error) {
	if g.schema != nil && !g.schema.HasVertexType(vtype) {
		return NoVertex, fmt.Errorf("graph: vertex type %q not in schema", vtype)
	}
	f := g.frozen.Load()
	if f != nil && !g.noDelta {
		// Overlay-bound vertex: validate declared properties before
		// mutating anything, so compaction can never fail on tail data
		// (delta.go).
		if err := g.checkTailProps(vtype, props); err != nil {
			return NoVertex, err
		}
	}
	id := VertexID(len(g.vertices))
	g.vertices = append(g.vertices, Vertex{ID: id, Type: vtype, Props: props})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	if g.byType == nil {
		g.byType = make(map[string][]VertexID)
	}
	g.byType[vtype] = append(g.byType[vtype], id)
	if f != nil {
		if g.noDelta {
			g.frozen.Store(nil)
		} else {
			f.overlayAddVertex(id)
			g.maybeCompact(f)
		}
	}
	return id, nil
}

// MustAddVertex is AddVertex for callers that know the type is valid
// (generators, tests). It panics on schema violation.
func (g *Graph) MustAddVertex(vtype string, props Properties) VertexID {
	id, err := g.AddVertex(vtype, props)
	if err != nil {
		panic(err)
	}
	return id
}

// AddEdge adds a directed typed edge and returns its ID. It validates
// vertex IDs and, when a schema is present, that the edge type's declared
// domain and range match the endpoint vertex types.
func (g *Graph) AddEdge(from, to VertexID, etype string, props Properties) (EdgeID, error) {
	if int(from) < 0 || int(from) >= len(g.vertices) {
		return -1, fmt.Errorf("graph: AddEdge: invalid source vertex %d", from)
	}
	if int(to) < 0 || int(to) >= len(g.vertices) {
		return -1, fmt.Errorf("graph: AddEdge: invalid target vertex %d", to)
	}
	if g.schema != nil {
		ft, tt := g.vertices[from].Type, g.vertices[to].Type
		if !g.schema.AllowsEdge(ft, tt, etype) {
			return -1, fmt.Errorf("graph: schema forbids edge %s-[%s]->%s", ft, etype, tt)
		}
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Type: etype, Props: props})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	if f := g.frozen.Load(); f != nil {
		if g.noDelta {
			g.frozen.Store(nil)
		} else {
			f.overlayAddEdge(id)
			g.maybeCompact(f)
		}
	}
	return id, nil
}

// MustAddEdge is AddEdge that panics on error, for generators and tests.
func (g *Graph) MustAddEdge(from, to VertexID, etype string, props Properties) EdgeID {
	id, err := g.AddEdge(from, to, etype, props)
	if err != nil {
		panic(err)
	}
	return id
}

// Vertex returns the vertex with the given ID. The returned pointer is
// into the graph's storage; callers must treat it as read-only.
func (g *Graph) Vertex(id VertexID) *Vertex { return &g.vertices[id] }

// Edge returns the edge with the given ID (read-only, like Vertex).
func (g *Graph) Edge(id EdgeID) *Edge { return &g.edges[id] }

// Out returns the IDs of edges leaving v, in insertion order.
func (g *Graph) Out(v VertexID) []EdgeID { return g.out[v] }

// In returns the IDs of edges entering v, in insertion order.
func (g *Graph) In(v VertexID) []EdgeID { return g.in[v] }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int { return len(g.out[v]) }

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v VertexID) int { return len(g.in[v]) }

// VerticesOfType returns the vertex IDs with the given type, in insertion
// order. The returned slice is shared; callers must not modify it.
func (g *Graph) VerticesOfType(vtype string) []VertexID { return g.byType[vtype] }

// VertexTypes returns the distinct vertex types present in the graph,
// sorted for deterministic iteration.
func (g *Graph) VertexTypes() []string {
	types := make([]string, 0, len(g.byType))
	for t := range g.byType {
		types = append(types, t)
	}
	sort.Strings(types)
	return types
}

// EdgeTypeCounts returns the number of edges of each edge type.
func (g *Graph) EdgeTypeCounts() map[string]int {
	counts := make(map[string]int)
	for i := range g.edges {
		counts[g.edges[i].Type]++
	}
	return counts
}

// CountVerticesOfType returns the number of vertices with the given type.
func (g *Graph) CountVerticesOfType(vtype string) int { return len(g.byType[vtype]) }

// EachVertex calls fn for every vertex in ID order.
func (g *Graph) EachVertex(fn func(*Vertex)) {
	for i := range g.vertices {
		fn(&g.vertices[i])
	}
}

// EachEdge calls fn for every edge in ID order.
func (g *Graph) EachEdge(fn func(*Edge)) {
	for i := range g.edges {
		fn(&g.edges[i])
	}
}

// Prop returns a vertex property value, or nil when absent.
func (v *Vertex) Prop(key string) any {
	if v.Props == nil {
		return nil
	}
	return v.Props[key]
}

// Prop returns an edge property value, or nil when absent.
func (e *Edge) Prop(key string) any {
	if e.Props == nil {
		return nil
	}
	return e.Props[key]
}

// SetProp sets a vertex property, allocating the bag lazily. It is intended
// for algorithms that annotate vertices (e.g. community labels); graphs
// being annotated must not be concurrently read.
func (v *Vertex) SetProp(key string, val any) {
	if v.Props == nil {
		v.Props = make(Properties, 1)
	}
	v.Props[key] = val
}

// String implements fmt.Stringer for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{|V|=%d, |E|=%d, types=%v}", len(g.vertices), len(g.edges), g.VertexTypes())
}
