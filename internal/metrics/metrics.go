// Package metrics is Kaskade's observability core: allocation-free
// atomic counters and a lock-free latency histogram that the execution
// paths bump on every query, aggregated into immutable Snapshots the
// monitoring surfaces read.
//
// A Registry is the per-System metric set. The hot-path write API is
// three atomic operations per query (count, rows, one histogram
// bucket), so instrumentation is cheap enough to stay always-on; the
// prepared-query benchmark guard in CI pins the overhead under 5%.
// Readers call Snapshot, which copies every counter with atomic loads —
// no locks are shared with writers, so concurrent queries never stall
// behind a monitoring scrape.
//
// Counter semantics (pinned by tests in internal/core):
//
//   - Queries/Rows/Latency count executions that ran — EXPLAIN and
//     EXPLAIN without ANALYZE plan only and bump nothing.
//   - RewriteHits/RewriteMisses count §V-C rewrite decisions on the
//     execution path: a prepared query re-plans once per catalog epoch,
//     so repeated executions of a cached plan count one decision, not
//     one per execution. Per-view hit counters (workload.Catalog) move
//     in lockstep.
//   - QueryErrors counts executions that terminated with an error
//     (including cancellation), plus statements that failed to parse or
//     plan.
//
// Time-series monitoring (the `kaskade top` dashboard) is built from
// periodic Snapshots pushed into a Ring (ring.go); rates and interval
// quantiles come from subtracting consecutive snapshots, which the
// Hist.Sub/Quantile helpers support directly.
package metrics

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic up/down gauge — a level, not a rate (in-flight
// admitted requests, live server sessions).
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the histogram resolution: bucket i holds observations
// d with 2^i ns <= d < 2^(i+1) ns (bucket 0 additionally holds sub-ns
// zeros), so the range spans 1ns to ~4.6h in power-of-two steps —
// coarse at the top, fine where query latencies live.
const histBuckets = 44

// Histogram is a lock-free duration histogram: power-of-two buckets,
// each an atomic counter, plus atomic count and sum. Observe is three
// atomic adds; Snapshot is a consistent-enough copy (buckets are read
// one atomic load at a time, so a snapshot racing observations may be
// off by the in-flight observation — fine for monitoring).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns)) // 0 for 0ns, i+1 for 2^i <= ns < 2^(i+1)
	if b > 0 {
		b--
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.count.Add(1)
	h.sum.Add(d.Nanoseconds())
	h.buckets[bucketOf(d)].Add(1)
}

// Snapshot copies the histogram into an immutable Hist.
func (h *Histogram) Snapshot() Hist {
	var s Hist
	s.Count = h.count.Load()
	s.SumNS = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Hist is an immutable histogram snapshot. Subtracting two cumulative
// snapshots (Sub) yields the histogram of the interval between them —
// the basis of windowed quantiles in the monitoring dashboard.
type Hist struct {
	Count   int64
	SumNS   int64
	Buckets [histBuckets]int64
}

// Sub returns the interval histogram h - prev (both cumulative).
func (h Hist) Sub(prev Hist) Hist {
	out := Hist{Count: h.Count - prev.Count, SumNS: h.SumNS - prev.SumNS}
	for i := range h.Buckets {
		out.Buckets[i] = h.Buckets[i] - prev.Buckets[i]
	}
	return out
}

// Mean returns the mean observed duration (0 when empty).
func (h Hist) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return time.Duration(h.SumNS / h.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) as the upper bound of
// the bucket holding the q-th observation — a conservative (over-)
// estimate with power-of-two resolution. Returns 0 when empty.
func (h Hist) Quantile(q float64) time.Duration {
	if h.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(h.Count-1)) + 1
	var seen int64
	for i, n := range h.Buckets {
		seen += n
		if seen >= rank {
			return time.Duration(int64(1) << uint(i+1)) // bucket upper bound
		}
	}
	return time.Duration(h.SumNS) // unreachable unless buckets race; cap at sum
}

// QueryStat is the cumulative record of one query text — the data
// behind top-N-queries-by-time in the dashboard.
type QueryStat struct {
	Query string
	Count int64
	Total time.Duration
	Rows  int64
}

// Mean returns the mean execution time.
func (s QueryStat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// maxQueryStats caps the per-query-text map so a workload of unbounded
// distinct texts (ad-hoc generated queries) cannot grow the registry
// without limit; texts beyond the cap are counted in the aggregate
// counters but not tracked individually.
const maxQueryStats = 512

// Registry is one System's metric set. The zero value is NOT ready;
// use NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	Queries          Counter   // executions that ran (success or error)
	QueryErrors      Counter   // executions that errored + parse/plan failures
	Rows             Counter   // result rows returned across all executions
	RewriteHits      Counter   // §V-C rewrite decisions that landed on a view
	RewriteMisses    Counter   // rewrite decisions that stayed on the base graph
	Materializations Counter   // views landed in the catalog
	Latency          Histogram // per-execution wall time

	// Columnar-storage usage: vertex property reads served from the
	// frozen typed columns (including prefilter scans) vs reads that
	// fell back to the per-vertex property map (undeclared property,
	// column-less type, or columns disabled). Edge property reads are
	// always map reads and count in neither.
	ColumnScans      Counter
	PropMapFallbacks Counter

	// Service-boundary metrics, bumped by internal/server (the kaskaded
	// daemon); they stay zero for purely in-process use.
	Admitted    Counter // requests admitted past the in-flight limiter
	Rejected    Counter // requests rejected with 429 at admission
	TimedOut    Counter // admitted executions that hit their deadline
	CacheHits   Counter // response-cache hits served without executing
	CacheMisses Counter // cacheable requests that had to execute
	InFlight    Gauge   // admitted requests currently executing
	Sessions    Gauge   // live server sessions

	mu      sync.Mutex
	byQuery map[string]*QueryStat
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byQuery: make(map[string]*QueryStat)}
}

// ObserveQuery records one finished execution: the aggregate counters,
// the latency histogram, and (when label is non-empty and the per-query
// map has room) the per-query cumulative stats. errored marks an
// execution that terminated with an error; its rows (possibly partial)
// still count.
func (r *Registry) ObserveQuery(label string, d time.Duration, rows int64, errored bool) {
	r.Queries.Inc()
	r.Rows.Add(rows)
	r.Latency.Observe(d)
	if errored {
		r.QueryErrors.Inc()
	}
	if label == "" {
		return
	}
	r.mu.Lock()
	st := r.byQuery[label]
	if st == nil {
		if len(r.byQuery) >= maxQueryStats {
			r.mu.Unlock()
			return
		}
		st = &QueryStat{Query: label}
		r.byQuery[label] = st
	}
	st.Count++
	st.Total += d
	st.Rows += rows
	r.mu.Unlock()
}

// TopQueries returns up to n per-query records ordered by cumulative
// execution time, descending (ties broken by query text for
// determinism).
func (r *Registry) TopQueries(n int) []QueryStat {
	r.mu.Lock()
	out := make([]QueryStat, 0, len(r.byQuery))
	for _, st := range r.byQuery {
		out = append(out, *st)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Query < out[j].Query
	})
	if n >= 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// ViewCount is one materialized view's usage in a Snapshot.
type ViewCount struct {
	Name string
	Hits int64
}

// Snapshot is a point-in-time copy of every metric. Registry.Snapshot
// fills the registry-owned fields; core.System.MetricsSnapshot
// additionally fills the process-wide fields (FreezeEvents,
// WorkersActive/WorkersPeak) and the per-view usage list.
type Snapshot struct {
	Queries          int64
	QueryErrors      int64
	Rows             int64
	RewriteHits      int64
	RewriteMisses    int64
	Materializations int64
	Latency          Hist

	// Service-boundary metrics (internal/server): admission-control
	// outcomes, response-cache effectiveness, and the in-flight/session
	// levels at snapshot time.
	Admitted    int64
	Rejected    int64
	TimedOut    int64
	CacheHits   int64
	CacheMisses int64
	InFlight    int64
	Sessions    int64

	// Columnar-storage usage (see Registry.ColumnScans) and footprint:
	// ColumnCount/ColumnBytes describe the graph's frozen property
	// columns at snapshot time (filled by core.System.MetricsSnapshot).
	ColumnScans      int64
	PropMapFallbacks int64
	ColumnCount      int64
	ColumnBytes      int64

	// FreezeEvents is the process-wide count of CSR index builds
	// (graph.CSRBuilds — freezes are memoized per graph, so this counts
	// distinct index constructions, not Freeze calls).
	FreezeEvents int64
	// Delta-overlay storage state (filled by core.System.MetricsSnapshot,
	// mirroring the columnar counters above): the served graph's current
	// tail size, plus the process-wide overlay-resolved read count,
	// compaction count, and most recent compaction duration
	// (graph.OverlayReads / CompactionsTotal / LastCompactionDuration).
	DeltaTailVertices int64
	DeltaTailEdges    int64
	OverlayReads      int64
	Compactions       int64
	LastCompaction    time.Duration
	// WorkersActive/WorkersPeak are the process-wide par worker-pool
	// occupancy: currently running workers and the high-water mark.
	WorkersActive int64
	WorkersPeak   int64
	// Views lists per-view rewrite-hit counters at snapshot time, in
	// catalog creation order.
	Views []ViewCount
}

// Snapshot copies the registry's counters.
func (r *Registry) Snapshot() Snapshot {
	return Snapshot{
		Queries:          r.Queries.Load(),
		QueryErrors:      r.QueryErrors.Load(),
		Rows:             r.Rows.Load(),
		RewriteHits:      r.RewriteHits.Load(),
		RewriteMisses:    r.RewriteMisses.Load(),
		Materializations: r.Materializations.Load(),
		Latency:          r.Latency.Snapshot(),
		ColumnScans:      r.ColumnScans.Load(),
		PropMapFallbacks: r.PropMapFallbacks.Load(),
		Admitted:         r.Admitted.Load(),
		Rejected:         r.Rejected.Load(),
		TimedOut:         r.TimedOut.Load(),
		CacheHits:        r.CacheHits.Load(),
		CacheMisses:      r.CacheMisses.Load(),
		InFlight:         r.InFlight.Load(),
		Sessions:         r.Sessions.Load(),
	}
}

// HitRatio returns hits/(hits+misses), or 0 when no rewrite decision
// has been made.
func (s Snapshot) HitRatio() float64 {
	total := s.RewriteHits + s.RewriteMisses
	if total == 0 {
		return 0
	}
	return float64(s.RewriteHits) / float64(total)
}
