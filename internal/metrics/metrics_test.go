package metrics

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1, 0},
		{2, 1},
		{3, 1},
		{4, 2},
		{1023, 9},
		{1024, 10},
		{time.Hour * 100, histBuckets - 1}, // clamp at the top
		{-5, 0},                            // negative clamps to zero
	}
	for _, tc := range cases {
		if got := bucketOf(tc.d); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestHistogramQuantileAndMean(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	// 90 fast observations at ~1µs, 10 slow at ~1ms.
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	// The quantile is a power-of-two upper bound: p50 must sit in the
	// microsecond regime, p99 in the millisecond regime.
	if p50 := s.Quantile(0.50); p50 < time.Microsecond || p50 > 4*time.Microsecond {
		t.Errorf("p50 = %v, want ~1-2µs upper bound", p50)
	}
	if p99 := s.Quantile(0.99); p99 < time.Millisecond || p99 > 4*time.Millisecond {
		t.Errorf("p99 = %v, want ~1-2ms upper bound", p99)
	}
	wantMean := (90*time.Microsecond + 10*time.Millisecond) / 100
	if got := s.Mean(); got != wantMean {
		t.Errorf("mean = %v, want %v", got, wantMean)
	}
}

func TestHistSubGivesIntervalQuantiles(t *testing.T) {
	var h Histogram
	h.Observe(time.Microsecond)
	before := h.Snapshot()
	for i := 0; i < 50; i++ {
		h.Observe(time.Millisecond)
	}
	interval := h.Snapshot().Sub(before)
	if interval.Count != 50 {
		t.Fatalf("interval count = %d, want 50", interval.Count)
	}
	// The early microsecond observation is subtracted out, so even p0
	// of the interval lives in the millisecond regime.
	if p0 := interval.Quantile(0); p0 < time.Millisecond {
		t.Errorf("interval p0 = %v, want >= 1ms", p0)
	}
}

func TestObserveQueryAndTopQueries(t *testing.T) {
	r := NewRegistry()
	r.ObserveQuery("slow", 100*time.Millisecond, 5, false)
	r.ObserveQuery("slow", 100*time.Millisecond, 5, false)
	r.ObserveQuery("fast", time.Millisecond, 1, false)
	r.ObserveQuery("bad", time.Millisecond, 0, true)
	r.ObserveQuery("", time.Millisecond, 1, false) // unlabeled: aggregates only

	s := r.Snapshot()
	if s.Queries != 5 || s.Rows != 12 || s.QueryErrors != 1 {
		t.Fatalf("snapshot = %+v, want 5 queries / 12 rows / 1 error", s)
	}
	if s.Latency.Count != 5 {
		t.Fatalf("latency count = %d, want 5", s.Latency.Count)
	}

	top := r.TopQueries(2)
	if len(top) != 2 || top[0].Query != "slow" {
		t.Fatalf("top = %+v, want [slow ...]", top)
	}
	if top[0].Count != 2 || top[0].Rows != 10 || top[0].Mean() != 100*time.Millisecond {
		t.Errorf("slow stat = %+v", top[0])
	}
	if all := r.TopQueries(-1); len(all) != 3 {
		t.Errorf("TopQueries(-1) returned %d entries, want 3", len(all))
	}
}

func TestTopQueriesCapped(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < maxQueryStats+50; i++ {
		r.ObserveQuery(fmt.Sprintf("q%d", i), time.Millisecond, 1, false)
	}
	if got := len(r.TopQueries(-1)); got != maxQueryStats {
		t.Errorf("tracked %d distinct queries, want cap %d", got, maxQueryStats)
	}
	// Beyond-cap observations still land in the aggregates.
	if got := r.Snapshot().Queries; got != int64(maxQueryStats+50) {
		t.Errorf("aggregate queries = %d, want %d", got, maxQueryStats+50)
	}
}

func TestHitRatio(t *testing.T) {
	if r := (Snapshot{}).HitRatio(); r != 0 {
		t.Errorf("empty ratio = %v, want 0", r)
	}
	if r := (Snapshot{RewriteHits: 3, RewriteMisses: 1}).HitRatio(); r != 0.75 {
		t.Errorf("ratio = %v, want 0.75", r)
	}
}

func TestRingWraparound(t *testing.T) {
	ring := NewRing(3)
	if got := ring.Samples(); len(got) != 0 {
		t.Fatalf("empty ring returned %d samples", len(got))
	}
	for i := 1; i <= 5; i++ {
		ring.Push(Sample{Snap: Snapshot{Queries: int64(i)}})
	}
	if ring.Len() != 3 {
		t.Fatalf("len = %d, want 3", ring.Len())
	}
	got := ring.Samples()
	for i, want := range []int64{3, 4, 5} { // oldest-first, last capacity pushes
		if got[i].Snap.Queries != want {
			t.Errorf("sample %d = %d, want %d", i, got[i].Snap.Queries, want)
		}
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	ring := NewRing(0) // clamped so rates (pairs of samples) always work
	ring.Push(Sample{Snap: Snapshot{Queries: 1}})
	ring.Push(Sample{Snap: Snapshot{Queries: 2}})
	if ring.Len() != 2 {
		t.Errorf("len = %d, want 2", ring.Len())
	}
}

// TestConcurrentObserveAndSnapshot exercises the lock-free write path
// against snapshot readers under the race detector.
func TestConcurrentObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	ring := NewRing(16)
	var wg sync.WaitGroup
	const writers, perWriter = 8, 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := fmt.Sprintf("writer-%d", w%3)
			for i := 0; i < perWriter; i++ {
				r.ObserveQuery(label, time.Duration(i)*time.Microsecond, 2, i%100 == 0)
				r.RewriteHits.Inc()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			ring.Push(Sample{Snap: r.Snapshot()})
			r.TopQueries(3)
		}
	}()
	wg.Wait()
	s := r.Snapshot()
	if want := int64(writers * perWriter); s.Queries != want || s.RewriteHits != want {
		t.Fatalf("queries=%d hits=%d, want %d", s.Queries, s.RewriteHits, want)
	}
	if s.Rows != int64(writers*perWriter*2) {
		t.Fatalf("rows = %d", s.Rows)
	}
	if s.Latency.Count != int64(writers*perWriter) {
		t.Fatalf("latency count = %d", s.Latency.Count)
	}
}
