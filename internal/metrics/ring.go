package metrics

import (
	"sync"
	"time"
)

// Sample is one timestamped Snapshot — the unit the monitoring ring
// buffer retains.
type Sample struct {
	At   time.Time
	Snap Snapshot
}

// Ring is a fixed-capacity ring buffer of Samples: the in-memory
// history behind `kaskade top`'s time-series panels. Pushing beyond
// capacity overwrites the oldest sample, so memory is bounded by the
// configured retention (capacity = retention / sample interval).
// A Ring is safe for concurrent use.
type Ring struct {
	mu    sync.Mutex
	buf   []Sample
	start int // index of the oldest sample
	n     int // samples held
}

// NewRing returns a ring holding up to capacity samples (minimum 2 —
// rates need two points).
func NewRing(capacity int) *Ring {
	if capacity < 2 {
		capacity = 2
	}
	return &Ring{buf: make([]Sample, capacity)}
}

// Push appends a sample, evicting the oldest when full.
func (r *Ring) Push(s Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = s
		r.n++
		return
	}
	r.buf[r.start] = s
	r.start = (r.start + 1) % len(r.buf)
}

// Len returns the number of samples held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Samples returns the held samples, oldest first, as a copy.
func (r *Ring) Samples() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}
