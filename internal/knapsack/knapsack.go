// Package knapsack solves the 0/1 knapsack problem behind Kaskade's view
// selection (§V-B): candidate views are items whose weight is the view's
// estimated size and whose value is its workload performance improvement
// divided by creation cost; the capacity is the space budget.
//
// It stands in for the branch-and-bound knapsack solver of Google
// OR-Tools that the paper used: Solve runs an exact branch-and-bound with
// a fractional (LP) relaxation bound, which is optimal like OR-Tools'
// solver at view-selection scales (tens of items).
package knapsack

import (
	"sort"
)

// Item is one knapsack candidate.
type Item struct {
	Weight int64   // > 0; zero-weight items are always taken when Value > 0
	Value  float64 // >= 0
}

// Solve returns the indices (in input order) of an optimal item subset
// whose total weight does not exceed capacity, and the subset's total
// value. Items with non-positive value are never selected; items with
// non-positive weight and positive value are always selected.
func Solve(items []Item, capacity int64) (picked []int, total float64) {
	if capacity < 0 {
		capacity = 0
	}
	var free []int
	var candidates []int
	for i, it := range items {
		if it.Value <= 0 {
			continue
		}
		if it.Weight <= 0 {
			free = append(free, i)
			total += it.Value
			continue
		}
		if it.Weight <= capacity {
			candidates = append(candidates, i)
		}
	}
	chosen, v := branchAndBound(items, candidates, capacity)
	total += v
	picked = append(free, chosen...)
	sort.Ints(picked)
	return picked, total
}

// branchAndBound performs exact DFS with a fractional-relaxation upper
// bound, exploring take-branches first on items sorted by value density.
func branchAndBound(items []Item, cand []int, capacity int64) ([]int, float64) {
	if len(cand) == 0 {
		return nil, 0
	}
	order := append([]int(nil), cand...)
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := items[order[a]], items[order[b]]
		return ia.Value*float64(ib.Weight) > ib.Value*float64(ia.Weight)
	})

	bestVal := 0.0
	var bestSet []int
	cur := make([]int, 0, len(order))

	// bound computes the fractional-knapsack upper bound from position
	// pos with remaining capacity rem.
	bound := func(pos int, rem int64, acc float64) float64 {
		b := acc
		for _, idx := range order[pos:] {
			it := items[idx]
			if it.Weight <= rem {
				rem -= it.Weight
				b += it.Value
			} else {
				b += it.Value * float64(rem) / float64(it.Weight)
				break
			}
		}
		return b
	}

	var dfs func(pos int, rem int64, acc float64)
	dfs = func(pos int, rem int64, acc float64) {
		if acc > bestVal {
			bestVal = acc
			bestSet = append(bestSet[:0], cur...)
		}
		if pos == len(order) {
			return
		}
		if bound(pos, rem, acc) <= bestVal {
			return // prune
		}
		it := items[order[pos]]
		if it.Weight <= rem {
			cur = append(cur, order[pos])
			dfs(pos+1, rem-it.Weight, acc+it.Value)
			cur = cur[:len(cur)-1]
		}
		dfs(pos+1, rem, acc)
	}
	dfs(0, capacity, 0)
	return bestSet, bestVal
}

// BruteForce enumerates all 2^n subsets; used to validate Solve in tests
// and safe for n <= ~20.
func BruteForce(items []Item, capacity int64) (picked []int, total float64) {
	n := len(items)
	best := 0.0
	bestMask := 0
	for mask := 0; mask < 1<<n; mask++ {
		var w int64
		v := 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				w += items[i].Weight
				v += items[i].Value
			}
		}
		if w <= capacity && v > best {
			best = v
			bestMask = mask
		}
	}
	for i := 0; i < n; i++ {
		if bestMask&(1<<i) != 0 {
			picked = append(picked, i)
		}
	}
	return picked, best
}
