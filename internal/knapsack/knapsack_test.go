package knapsack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveSmallKnown(t *testing.T) {
	items := []Item{
		{Weight: 10, Value: 60},
		{Weight: 20, Value: 100},
		{Weight: 30, Value: 120},
	}
	picked, total := Solve(items, 50)
	// Optimal: items 1 and 2 (100 + 120 = 220).
	if total != 220 {
		t.Errorf("total = %v, want 220", total)
	}
	if len(picked) != 2 || picked[0] != 1 || picked[1] != 2 {
		t.Errorf("picked = %v, want [1 2]", picked)
	}
}

func TestSolveEdgeCases(t *testing.T) {
	if picked, total := Solve(nil, 100); len(picked) != 0 || total != 0 {
		t.Errorf("empty items: %v %v", picked, total)
	}
	// Zero capacity: only zero-weight items fit.
	items := []Item{{Weight: 0, Value: 5}, {Weight: 1, Value: 100}}
	picked, total := Solve(items, 0)
	if len(picked) != 1 || picked[0] != 0 || total != 5 {
		t.Errorf("zero capacity: %v %v", picked, total)
	}
	// Negative capacity treated as zero.
	if _, total := Solve(items, -7); total != 5 {
		t.Errorf("negative capacity total = %v", total)
	}
	// Worthless items never picked.
	items = []Item{{Weight: 1, Value: 0}, {Weight: 1, Value: -3}}
	if picked, _ := Solve(items, 10); len(picked) != 0 {
		t.Errorf("worthless items picked: %v", picked)
	}
	// Item heavier than capacity skipped.
	items = []Item{{Weight: 100, Value: 999}, {Weight: 5, Value: 1}}
	picked, total = Solve(items, 10)
	if len(picked) != 1 || picked[0] != 1 || total != 1 {
		t.Errorf("oversized item: %v %v", picked, total)
	}
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				Weight: int64(1 + rng.Intn(30)),
				Value:  float64(rng.Intn(100)),
			}
		}
		capacity := int64(rng.Intn(100))
		_, got := Solve(items, capacity)
		_, want := BruteForce(items, capacity)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Solve=%v BruteForce=%v items=%v cap=%d",
				trial, got, want, items, capacity)
		}
	}
}

func TestSolveRespectsCapacityProperty(t *testing.T) {
	f := func(ws []uint8, vs []uint8, capRaw uint16) bool {
		n := len(ws)
		if len(vs) < n {
			n = len(vs)
		}
		if n > 16 {
			n = 16
		}
		items := make([]Item, n)
		for i := 0; i < n; i++ {
			items[i] = Item{Weight: int64(ws[i]), Value: float64(vs[i])}
		}
		capacity := int64(capRaw % 500)
		picked, total := Solve(items, capacity)
		var w int64
		v := 0.0
		seen := map[int]bool{}
		for _, idx := range picked {
			if idx < 0 || idx >= n || seen[idx] {
				return false
			}
			seen[idx] = true
			if items[idx].Weight > 0 {
				w += items[idx].Weight
			}
			v += items[idx].Value
		}
		return w <= capacity && math.Abs(v-total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLargerInstanceTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := make([]Item, 60)
	for i := range items {
		items[i] = Item{Weight: int64(1 + rng.Intn(1000)), Value: float64(rng.Intn(1000))}
	}
	picked, total := Solve(items, 5000)
	if total <= 0 || len(picked) == 0 {
		t.Errorf("large instance: picked=%d total=%v", len(picked), total)
	}
}
