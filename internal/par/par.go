// Package par holds the one worker-pool idiom the parallel subsystem
// uses: a bounded pool of goroutines claiming task indexes from an
// atomic counter. The executor's chunk matcher and the catalog's
// concurrent view materialization both run on it, so pool mechanics
// (claiming, draining, shutdown) live in exactly one place.
package par

import (
	"sync"
	"sync/atomic"
)

// Do runs `worker` on min(workers, n) goroutines and waits for all of
// them. Each worker claims task indexes in [0, n) through next(), which
// returns ok=false once the range is exhausted; indexes are handed out
// in increasing order, each exactly once. Workers needing per-goroutine
// state (the executor's per-worker matcher) set it up before their
// claim loop. With workers <= 1 or n <= 1, worker runs inline on the
// calling goroutine — a deterministic sequential fallback.
func Do(n, workers int, worker func(next func() (int, bool))) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	var counter int64
	next := func() (int, bool) {
		i := int(atomic.AddInt64(&counter, 1)) - 1
		return i, i < n
	}
	if workers <= 1 {
		worker(next)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker(next)
		}()
	}
	wg.Wait()
}

// For runs fn(i) for every i in [0, n) on up to `workers` goroutines,
// for tasks that need no per-worker state.
func For(n, workers int, fn func(i int)) {
	Do(n, workers, func(next func() (int, bool)) {
		for {
			i, ok := next()
			if !ok {
				return
			}
			fn(i)
		}
	})
}
