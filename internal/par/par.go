// Package par holds the one worker-pool idiom the parallel subsystem
// uses: a bounded pool of goroutines claiming task indexes from an
// atomic counter. The executor's chunk matcher and the catalog's
// concurrent view materialization both run on it, so pool mechanics
// (claiming, draining, shutdown) live in exactly one place.
package par

import (
	"context"
	"sync"
	"sync/atomic"
)

// Do runs `worker` on min(workers, n) goroutines and waits for all of
// them. Each worker claims task indexes in [0, n) through next(), which
// returns ok=false once the range is exhausted; indexes are handed out
// in increasing order, each exactly once. Workers needing per-goroutine
// state (the executor's per-worker matcher) set it up before their
// claim loop. With workers <= 1 or n <= 1, worker runs inline on the
// calling goroutine — a deterministic sequential fallback.
func Do(n, workers int, worker func(next func() (int, bool))) {
	DoContext(nil, n, workers, worker)
}

// DoContext is Do with cooperative cancellation: once ctx is done,
// next() stops handing out task indexes and reports ok=false, so
// workers drain without claiming further work. Tasks already claimed
// run to completion — aborting within a task is the task's own
// business (the executor's matcher polls the same context). Callers
// that rendezvous on per-task completion must therefore select on ctx
// as well, since unclaimed tasks never complete.
func DoContext(ctx context.Context, n, workers int, worker func(next func() (int, bool))) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	var counter int64
	next := func() (int, bool) {
		if ctx != nil && ctx.Err() != nil {
			return n, false
		}
		i := int(atomic.AddInt64(&counter, 1)) - 1
		return i, i < n
	}
	if workers <= 1 {
		enterWorker()
		worker(next)
		active.Add(-1)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			enterWorker()
			defer active.Add(-1)
			worker(next)
		}()
	}
	wg.Wait()
}

// Worker-pool occupancy, process-wide: every claim loop — pooled
// goroutine or the inline sequential fallback — counts as one active
// worker for its duration. The metrics snapshot reads these to report
// pool occupancy without the pools having to thread a registry through
// every call site.
var (
	active atomic.Int64
	peak   atomic.Int64
)

// enterWorker marks one worker active and advances the high-water mark.
func enterWorker() {
	a := active.Add(1)
	for {
		p := peak.Load()
		if a <= p || peak.CompareAndSwap(p, a) {
			return
		}
	}
}

// ActiveWorkers returns the number of currently running pool workers.
func ActiveWorkers() int64 { return active.Load() }

// PeakWorkers returns the high-water mark of concurrently running pool
// workers since process start.
func PeakWorkers() int64 { return peak.Load() }

// DoContextDone is DoContext with a per-task completion hook: onDone(i)
// fires exactly once for every task index a worker claimed, after the
// worker finished processing it — detected when the claiming goroutine
// asks for its next task or exits its claim loop. The hook runs on the
// worker's goroutine, so anything the task body wrote before is visible
// to it (and, through whatever synchronization the hook performs, to a
// coordinator rendezvousing on per-task completion — the executor's
// partition-order merge waits on exactly this signal). Tasks never
// claimed (context cancelled first) get no hook call; coordinators must
// select on the context as well, as with DoContext.
func DoContextDone(ctx context.Context, n, workers int, worker func(next func() (int, bool)), onDone func(i int)) {
	DoContext(ctx, n, workers, func(next func() (int, bool)) {
		last := -1
		worker(func() (int, bool) {
			if last >= 0 {
				onDone(last)
				last = -1
			}
			i, ok := next()
			if ok {
				last = i
			}
			return i, ok
		})
		if last >= 0 {
			onDone(last)
		}
	})
}

// Chunks partitions n items into contiguous chunks for a pool of
// `workers`, over-decomposed to `target` chunks per worker so fast
// workers steal the tail when work is skewed. It returns the chunk
// size and count; chunk i covers [i*size, min((i+1)*size, n)). Both
// the executor's parallel matcher and the connectors' parallel
// materialization partition with it, so the tuning lives once.
func Chunks(n, workers, target int) (size, count int) {
	size = (n + workers*target - 1) / (workers * target)
	if size < 1 {
		size = 1
	}
	return size, (n + size - 1) / size
}

// For runs fn(i) for every i in [0, n) on up to `workers` goroutines,
// for tasks that need no per-worker state.
func For(n, workers int, fn func(i int)) {
	Do(n, workers, func(next func() (int, bool)) {
		for {
			i, ok := next()
			if !ok {
				return
			}
			fn(i)
		}
	})
}
