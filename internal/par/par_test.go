package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 100} {
		const n = 537
		var hits [n]int64
		For(n, workers, func(i int) { atomic.AddInt64(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestDoEmptyAndSingle(t *testing.T) {
	Do(0, 4, func(next func() (int, bool)) { t.Error("worker ran for n=0") })
	ran := 0
	Do(1, 4, func(next func() (int, bool)) {
		for {
			_, ok := next()
			if !ok {
				return
			}
			ran++
		}
	})
	if ran != 1 {
		t.Fatalf("ran=%d, want 1", ran)
	}
}

func TestDoSequentialFallbackIsInline(t *testing.T) {
	// workers=1 must run on the calling goroutine in index order.
	var order []int
	Do(5, 1, func(next func() (int, bool)) {
		for {
			i, ok := next()
			if !ok {
				return
			}
			order = append(order, i)
		}
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}
