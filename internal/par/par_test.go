package par

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 100} {
		const n = 537
		var hits [n]int64
		For(n, workers, func(i int) { atomic.AddInt64(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestDoEmptyAndSingle(t *testing.T) {
	Do(0, 4, func(next func() (int, bool)) { t.Error("worker ran for n=0") })
	ran := 0
	Do(1, 4, func(next func() (int, bool)) {
		for {
			_, ok := next()
			if !ok {
				return
			}
			ran++
		}
	})
	if ran != 1 {
		t.Fatalf("ran=%d, want 1", ran)
	}
}

// TestDoContextDoneFiresOncePerClaimedTask: the completion hook must
// fire exactly once per claimed index, and only after the worker
// finished processing it (the processed flag is set before the claim
// loop asks for the next task).
func TestDoContextDoneFiresOncePerClaimedTask(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		const n = 101
		var processed [n]atomic.Bool
		var doneCount [n]int64
		var mu sync.Mutex
		DoContextDone(context.Background(), n, workers, func(next func() (int, bool)) {
			for {
				i, ok := next()
				if !ok {
					return
				}
				processed[i].Store(true)
			}
		}, func(i int) {
			if !processed[i].Load() {
				t.Errorf("workers=%d: done(%d) before task processed", workers, i)
			}
			mu.Lock()
			doneCount[i]++
			mu.Unlock()
		})
		for i, c := range doneCount {
			if c != 1 {
				t.Fatalf("workers=%d: done(%d) fired %d times", workers, i, c)
			}
		}
	}
}

// TestDoContextDoneSkipsUnclaimed: once the context is cancelled,
// unclaimed tasks get neither a run nor a completion hook, and every
// hook that does fire matches a claimed task.
func TestDoContextDoneSkipsUnclaimed(t *testing.T) {
	const n = 50
	ctx, cancel := context.WithCancel(context.Background())
	var claimed, done sync.Map
	DoContextDone(ctx, n, 3, func(next func() (int, bool)) {
		for {
			i, ok := next()
			if !ok {
				return
			}
			claimed.Store(i, true)
			// Task 0 cancels the pool; every other task parks until the
			// cancellation lands, so each worker claims at most one task
			// and most of the range stays unclaimed.
			if i == 0 {
				cancel()
			} else {
				<-ctx.Done()
			}
		}
	}, func(i int) { done.Store(i, true) })
	nDone := 0
	done.Range(func(k, _ any) bool {
		nDone++
		if _, ok := claimed.Load(k); !ok {
			t.Errorf("done(%v) without a claim", k)
		}
		return true
	})
	nClaimed := 0
	claimed.Range(func(_, _ any) bool { nClaimed++; return true })
	if nDone != nClaimed {
		t.Fatalf("claimed %d tasks but %d completion hooks fired", nClaimed, nDone)
	}
	if nClaimed >= n {
		t.Fatalf("cancellation did not stop the claim stream (claimed all %d)", nClaimed)
	}
}

func TestDoSequentialFallbackIsInline(t *testing.T) {
	// workers=1 must run on the calling goroutine in index order.
	var order []int
	Do(5, 1, func(next func() (int, bool)) {
		for {
			i, ok := next()
			if !ok {
				return
			}
			order = append(order, i)
		}
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}
